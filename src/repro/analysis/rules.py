"""Lint rule protocol, registry, and shared AST helpers.

Rules register exactly like solver backends in
:mod:`repro.core.design`: a class decorator instantiates the rule and
keys it by its lowercase ``name``.  Two kinds exist:

* :class:`Rule` — a per-file AST rule.  It declares the node types it
  wants (``node_types``) and the engine dispatches them during its
  single walk of each file; the rule's ``scope`` is the per-path
  default (overridable via :class:`LintConfig` in the engine).
* :class:`ProjectRule` — a repo-level rule that runs once per lint
  invocation (the stage-version lockfile check), independent of which
  files were passed.

Findings are suppressed inline with

    # repro: allow[rule-id] -- reason

on the flagged line or on a standalone comment line directly above it;
the reason is mandatory (the engine flags reason-less suppressions).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from functools import cached_property
from pathlib import Path
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Finding:
    """One lint finding.

    Attributes:
        rule: the reporting rule's registry name.
        path: file the finding is anchored to (repo-relative when
            possible).
        line: 1-based line number.
        col: 0-based column.
        message: what is wrong and what to do about it.
        suppressed: whether an inline ``repro: allow`` covers it.
        suppress_reason: the suppression's stated reason, if any.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppress_reason: str | None = None

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suppressed:
            out["suppressed"] = True
            out["suppress_reason"] = self.suppress_reason
        return out


@dataclass(frozen=True)
class RuleScope:
    """Per-path applicability of a rule.

    Patterns are ``fnmatch`` globs over the file's repo-relative posix
    path (note ``fnmatch``'s ``*`` crosses ``/``, so ``src/repro/*``
    covers the whole subtree).  A file is in scope when it matches any
    include pattern and no exclude pattern.
    """

    include: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()

    def matches(self, rel_posix: str) -> bool:
        if not any(fnmatch(rel_posix, pat) for pat in self.include):
            return False
        return not any(fnmatch(rel_posix, pat) for pat in self.exclude)


class FileContext:
    """Everything a file rule may need about the file being walked."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.Module):
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree
        #: Live ancestor stack (outermost first) maintained by the
        #: engine's walk; valid only during ``visit`` dispatch.
        self.stack: list[ast.AST] = []
        #: Scratch space for rules that cache per-file analysis.
        self.cache: dict = {}

    @cached_property
    def aliases(self) -> dict[str, str]:
        """Imported local name -> absolute dotted target.

        ``import numpy as np`` maps ``np -> numpy``; ``from datetime
        import datetime`` maps ``datetime -> datetime.datetime``.
        Function-local imports are included (the codebase lazy-imports
        heavily); relative imports are skipped — the determinism rules
        only care about stdlib/numpy call sites.
        """
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.asname:
                        aliases.setdefault(a.asname, a.name)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module is None:
                    continue
                for a in node.names:
                    if a.name == "*":
                        continue
                    aliases.setdefault(
                        a.asname or a.name, f"{node.module}.{a.name}"
                    )
        return aliases

    def dotted(self, node: ast.AST) -> str | None:
        """The absolute dotted name a Name/Attribute expression denotes.

        Resolves the leading name through the import alias map, so
        ``np.random.default_rng`` reads ``numpy.random.default_rng``.
        None when the expression is not a plain dotted chain.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(self.aliases.get(current.id, current.id))
        parts.reverse()
        return ".".join(parts)

    def enclosing_function(
        self,
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None


@dataclass
class ProjectContext:
    """What a project-level rule sees: repo layout + the lock location."""

    repo_root: Path
    package_root: Path
    lock_path: Path
    _index: "object" = field(default=None, repr=False)

    @property
    def index(self):
        from .callgraph import ProjectIndex

        if self._index is None:
            self._index = ProjectIndex(self.package_root)
        return self._index


class Rule:
    """One per-file AST rule (subclass and register)."""

    #: Registry key; lowercase kebab-case.
    name: str = ""
    #: One-line summary shown by ``repro lint --list-rules``.
    description: str = ""
    #: Default per-path applicability.
    scope: RuleScope = RuleScope()
    #: Node classes the engine should dispatch to ``visit``.
    node_types: tuple[type, ...] = ()

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Finding]:  # pragma: no cover - interface
        return iter(())


class ProjectRule:
    """One repo-level rule, run once per lint invocation."""

    name: str = ""
    description: str = ""

    def check(
        self, ctx: ProjectContext
    ) -> list[Finding]:  # pragma: no cover - interface
        return []


_RULES: dict[str, Rule | ProjectRule] = {}


def register_rule(rule_cls):
    """Class decorator: instantiate and register a rule by its name."""
    instance = rule_cls()
    name = instance.name
    if not name or name != name.lower():
        raise ValueError(f"rule name {name!r} must be a lowercase key")
    _RULES[name] = instance
    return rule_cls


def rule_names() -> list[str]:
    """Registered rule names, sorted."""
    return sorted(_RULES)


def get_rule(name: str) -> Rule | ProjectRule:
    """The registered rule for ``name`` (KeyError with choices otherwise)."""
    try:
        return _RULES[name]
    except KeyError:
        raise KeyError(
            f"unknown rule {name!r}; registered: {', '.join(rule_names())}"
        ) from None


def all_rules() -> list[Rule | ProjectRule]:
    return [_RULES[name] for name in rule_names()]


def iter_findings(items: Iterable[Finding]) -> list[Finding]:
    return list(items)
