"""Lint reporters: human text and machine JSON."""

from __future__ import annotations

import json

from .engine import LintResult


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """One ``path:line:col: rule: message`` line per finding + summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: {finding.rule}: {finding.message}"
        )
    if show_suppressed:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location()}: {finding.rule}: suppressed "
                f"({finding.suppress_reason})"
            )
    n = len(result.findings)
    summary = (
        f"{n} finding(s)" if n else "clean"
    ) + (
        f", {len(result.suppressed)} suppressed"
        if result.suppressed
        else ""
    )
    lines.append(
        f"{summary}; {result.files_checked} file(s), "
        f"{len(result.rules_run)} rule(s)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    doc = {
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "summary": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "files_checked": result.files_checked,
            "rules": list(result.rules_run),
            "ok": result.ok,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)
