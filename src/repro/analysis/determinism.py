"""Determinism rules: seed-pinning, wall clocks, and iteration order.

Everything under ``src/repro/`` feeds seed-pinned experiments whose
artifacts are content-addressed and whose sweeps must resume
byte-identically (ROADMAP PRs 3/7).  These rules flag the three ways
that contract silently breaks:

* ``unseeded-rng`` — an RNG constructed without an explicit seed, or a
  draw from process-global RNG state.
* ``wall-clock-in-cached-code`` — ``time.time()`` / ``datetime.now()``
  reads outside the supervisor/journal allowlist (those timestamps are
  operational metadata; anything feeding stage payloads or records
  must not read the clock).
* ``nondeterministic-iteration`` — iterating a ``set``/``frozenset``
  or an unsorted directory listing while accumulating ordered output
  (records, cache keys, artifacts): set order is hash-randomized
  across processes, so the output bytes change run to run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .rules import FileContext, Finding, Rule, RuleScope, register_rule

#: numpy.random attributes that are seedable constructors/types, not
#: draws from the module-global RandomState.
_NP_RANDOM_SAFE = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "RandomState",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Seedable RNG constructors: fine with a seed argument, flagged bare.
_SEEDABLE = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: Module-level stdlib ``random`` functions (all draw from or mutate
#: the hidden global instance).
_PY_RANDOM_GLOBALS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


def _is_unseeded_call(node: ast.Call) -> bool:
    """No positional seed, no seed= keyword (or an explicit None)."""
    if any(isinstance(a, ast.Starred) for a in node.args):
        return False  # can't tell statically; give it the benefit
    if node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for kw in node.keywords:
        if kw.arg is None:  # **kwargs splat: can't tell
            return False
        if kw.arg == "seed":
            value = kw.value
            return isinstance(value, ast.Constant) and value.value is None
    return True


@register_rule
class UnseededRngRule(Rule):
    name = "unseeded-rng"
    description = (
        "RNG constructed without an explicit seed, or a draw from "
        "process-global RNG state"
    )
    scope = RuleScope(include=("src/repro/*",))
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        dotted = ctx.dotted(node.func)
        if dotted is None:
            return
        if dotted in _SEEDABLE:
            if _is_unseeded_call(node):
                yield Finding(
                    rule=self.name,
                    path=ctx.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{dotted}() without an explicit seed: entropy-"
                        "seeded RNGs break byte-identical replay and "
                        "resume; thread a pinned seed through the spec"
                    ),
                )
        elif dotted.startswith("numpy.random."):
            attr = dotted.rsplit(".", 1)[1]
            if attr not in _NP_RANDOM_SAFE:
                yield Finding(
                    rule=self.name,
                    path=ctx.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{dotted}() draws from numpy's module-global "
                        "RNG state; use a seeded np.random.default_rng"
                        "(seed) generator instead"
                    ),
                )
        elif (
            dotted.startswith("random.")
            and dotted.rsplit(".", 1)[1] in _PY_RANDOM_GLOBALS
        ):
            yield Finding(
                rule=self.name,
                path=ctx.rel,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{dotted}() uses the process-global random "
                    "instance; use random.Random(seed) (or a seeded "
                    "numpy generator) instead"
                ),
            )


#: Banned wall-clock reads.  time.perf_counter/monotonic stay legal:
#: they measure durations (runtime_s diagnostics), not timestamps, and
#: never feed cache keys or record content.
_WALL_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule
class WallClockRule(Rule):
    name = "wall-clock-in-cached-code"
    description = (
        "wall-clock read outside the supervisor/journal allowlist "
        "(cached payloads and records must be time-independent)"
    )
    # The sweep supervisor and journal legitimately timestamp task
    # transitions, heartbeats, and retry deadlines — operational
    # metadata that never enters artifacts or record rows.
    scope = RuleScope(
        include=("src/repro/*",),
        exclude=(
            "src/repro/exp/queue.py",
            "src/repro/exp/service.py",
        ),
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        dotted = ctx.dotted(node.func)
        if dotted in _WALL_CLOCKS:
            yield Finding(
                rule=self.name,
                path=ctx.rel,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{dotted}() in code reachable from cached stage "
                    "payloads: wall clocks make reruns diverge; use "
                    "time.perf_counter() for durations or keep "
                    "timestamps in the supervisor/journal layer"
                ),
            )


#: Wrappers that preserve (lack of) ordering of their first argument.
_TRANSPARENT_WRAPPERS = frozenset({"enumerate", "list", "tuple", "reversed"})

#: Mutating method names whose receivers accumulate ordered output.
_ACCUMULATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "extend",
        "insert",
        "put",
        "setdefault",
        "update",
        "write",
        "writelines",
        "writerow",
        "writerows",
    }
)


def _unwrap_transparent(node: ast.AST) -> ast.AST:
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _TRANSPARENT_WRAPPERS
        and node.args
    ):
        node = node.args[0]
    return node


def _is_unordered_expr(node: ast.AST, ctx: FileContext) -> str | None:
    """A human label when the expression yields unordered elements."""
    node = _unwrap_transparent(node)
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        dotted = ctx.dotted(node.func)
        if dotted in ("set", "frozenset"):
            return f"{dotted}(...)"
        if dotted in ("os.listdir", "os.scandir"):
            return f"{dotted}(...) (filesystem order)"
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "glob",
            "rglob",
            "iterdir",
        ):
            return f".{node.func.attr}(...) (filesystem order)"
    if isinstance(node, ast.Name):
        label = _setlike_locals(ctx).get(node.id)
        if label is not None:
            return label
    return None


def _setlike_locals(ctx: FileContext) -> dict[str, str]:
    """Names bound (only ever) to unordered values in the enclosing scope."""
    func = ctx.enclosing_function()
    key = ("setlike", id(func))
    if key in ctx.cache:
        return ctx.cache[key]
    scope: ast.AST = func if func is not None else ctx.tree
    labels: dict[str, str] = {}
    poisoned: set[str] = set()
    for sub in ast.walk(scope):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            target = sub.targets[0]
            if isinstance(target, ast.Name):
                value = sub.value
                label = None
                if isinstance(value, ast.Set):
                    label = "a set literal"
                elif isinstance(value, ast.Call):
                    dotted = ctx.dotted(value.func)
                    if dotted in ("set", "frozenset"):
                        label = f"{dotted}(...)"
                if label is None:
                    poisoned.add(target.id)
                elif target.id not in labels:
                    labels[target.id] = label
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)) and isinstance(
            getattr(sub, "target", None), ast.Name
        ):
            poisoned.add(sub.target.id)
    result = {
        name: f"{label} (via local {name!r})"
        for name, label in labels.items()
        if name not in poisoned
    }
    ctx.cache[key] = result
    return result


def _accumulates(body: list[ast.stmt]) -> bool:
    """Does the loop body build ordered output (records, keys, files)?"""
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _ACCUMULATORS
                ):
                    return True
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
            elif isinstance(sub, ast.Assign):
                if any(
                    isinstance(t, ast.Subscript) for t in sub.targets
                ):
                    return True
            elif isinstance(sub, ast.AugAssign) and isinstance(
                sub.target, ast.Subscript
            ):
                return True
    return False


@register_rule
class NondeterministicIterationRule(Rule):
    name = "nondeterministic-iteration"
    description = (
        "unordered iteration (set / unsorted directory listing) while "
        "building ordered output"
    )
    scope = RuleScope(include=("src/repro/*",))
    node_types = (ast.For, ast.AsyncFor, ast.ListComp, ast.DictComp)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            label = _is_unordered_expr(node.iter, ctx)
            if label is not None and _accumulates(node.body):
                yield Finding(
                    rule=self.name,
                    path=ctx.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"loop over {label} accumulates ordered output; "
                        "set/filesystem order is not stable across "
                        "processes — wrap the iterable in sorted(...)"
                    ),
                )
            return
        for comp in node.generators:
            label = _is_unordered_expr(comp.iter, ctx)
            if label is not None:
                kind = (
                    "list" if isinstance(node, ast.ListComp) else "dict"
                )
                yield Finding(
                    rule=self.name,
                    path=ctx.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{kind} comprehension over {label}: the result "
                        "order is not stable across processes — wrap "
                        "the iterable in sorted(...)"
                    ),
                )
