"""Static project index: repo-local name resolution and AST hashing.

The stage-version-drift rule needs a *stable fingerprint* of the code
that produces each cached artifact: the stage's payload/run functions
plus every repo-local function or class they can reach.  This module
provides that machinery:

* :class:`ProjectIndex` parses every module of the package once and
  resolves names — through ``import``/``from ... import`` chains,
  including relative imports and function-local lazy imports — to the
  ``def``/``class`` statements they denote.
* :meth:`ProjectIndex.closure` walks a root set of definitions to the
  transitive repo-local dependencies.  Resolution is deliberately an
  *over*-approximation (a local variable shadowing a module-level name
  still counts as a dependency): a spurious dependency can only make
  the fingerprint more sensitive, which errs on the side of retiring
  cached artifacts — never serving stale ones.
* :meth:`ProjectIndex.fingerprint` hashes the closure's *normalized*
  ASTs (docstrings stripped; comments and formatting never reach the
  AST), so renaming a file, editing a comment, or rewrapping a line
  does not move the hash — changing executable structure does.

Versioned components cut the walk: a dependency that resolves into
another lock entry's package (e.g. ``repro.graph`` for the
``graph:kernel`` entry) contributes an opaque ``@entry`` marker
instead of its code, so a kernel change moves only the kernel's hash
and demands only a ``KERNEL_VERSION`` bump — not a version bump of
every consumer (their cache keys already embed the kernel version).
"""

from __future__ import annotations

import ast
import copy
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

#: A resolved repo-local definition: (module name, qualified name).
DefRef = tuple[str, str]


@dataclass
class ModuleInfo:
    """One parsed module of the package.

    Attributes:
        name: dotted module name (``repro.exp.stages``).
        path: source file.
        is_package: whether this is an ``__init__.py``.
        tree: the parsed AST.
        defs: top-level function/class name -> its def node.
        bindings: imported name -> binding target (see ``_bind``).
    """

    name: str
    path: Path
    is_package: bool
    tree: ast.Module
    defs: dict[str, ast.AST] = field(default_factory=dict)
    bindings: dict[str, tuple] = field(default_factory=dict)


class ProjectIndex:
    """Name resolution + normalized-AST hashing over one package tree.

    Args:
        package_root: directory of the package (``.../src/repro``).
        package: the package's import name.
    """

    def __init__(self, package_root: Path, package: str = "repro") -> None:
        self.package = package
        self.package_root = Path(package_root)
        self.modules: dict[str, ModuleInfo] = {}
        for py in sorted(self.package_root.rglob("*.py")):
            rel = py.relative_to(self.package_root)
            parts = rel.with_suffix("").parts
            is_package = rel.name == "__init__.py"
            if is_package:
                parts = parts[:-1]
            name = ".".join((package,) + parts)
            tree = ast.parse(py.read_text(), filename=str(py))
            self.modules[name] = ModuleInfo(name, py, is_package, tree)
        for info in self.modules.values():
            self._index_module(info)

    # -- module indexing ---------------------------------------------------

    def _index_module(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                info.defs[node.name] = node
        # Imports anywhere in the file (the codebase lazy-imports inside
        # functions heavily) become module-wide bindings.  First binding
        # wins, deterministically: ast.walk order is the parse order.
        for node in ast.walk(info.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._bind(info, node)

    def _bind(self, info: ModuleInfo, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                if self._is_local_module(target):
                    info.bindings.setdefault(local, ("mod", target))
                else:
                    info.bindings.setdefault(local, ("ext",))
            return
        mod = self._absolute_module(info, node.level, node.module)
        if mod is None or not self._is_local_prefix(mod):
            for alias in node.names:
                if alias.name != "*":
                    info.bindings.setdefault(alias.asname or alias.name, ("ext",))
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            sub = f"{mod}.{alias.name}"
            if sub in self.modules:
                info.bindings.setdefault(local, ("mod", sub))
            else:
                info.bindings.setdefault(local, ("obj", mod, alias.name))

    def _absolute_module(
        self, info: ModuleInfo, level: int, module: str | None
    ) -> str | None:
        """The absolute module named by an import (None when external)."""
        if level == 0:
            return module
        parts = info.name.split(".")
        if not info.is_package:
            parts = parts[:-1]
        if level > 1:
            if level - 1 >= len(parts):
                return None
            parts = parts[: len(parts) - (level - 1)]
        base = ".".join(parts)
        return f"{base}.{module}" if module else base

    def _is_local_prefix(self, mod: str) -> bool:
        return mod == self.package or mod.startswith(self.package + ".")

    def _is_local_module(self, mod: str) -> bool:
        return mod in self.modules

    # -- name resolution ---------------------------------------------------

    def resolve_name(
        self, info: ModuleInfo, name: str, _seen: frozenset = frozenset()
    ) -> DefRef | None:
        """Resolve a bare name in a module to a repo-local definition."""
        if name in info.defs:
            return (info.name, name)
        binding = info.bindings.get(name)
        if binding is None:
            return None
        return self._resolve_binding(binding, _seen)

    def _resolve_binding(
        self, binding: tuple, _seen: frozenset
    ) -> DefRef | None:
        if binding[0] != "obj" or binding in _seen:
            return None
        _, modname, attr = binding
        target = self.modules.get(modname)
        if target is None:
            return None
        return self.resolve_name(target, attr, _seen | {binding})

    def resolve_dotted(self, info: ModuleInfo, chain: list[str]) -> DefRef | None:
        """Resolve an attribute chain (``pkg.mod.name`` style) to a def.

        The chain's head is a local name; module bindings are descended
        while the remaining attributes keep naming submodules, then the
        next attribute resolves as a definition in the final module.
        """
        binding = info.bindings.get(chain[0])
        if binding is None or binding[0] != "mod":
            return None
        modname = binding[1]
        i = 1
        while i < len(chain) and f"{modname}.{chain[i]}" in self.modules:
            modname = f"{modname}.{chain[i]}"
            i += 1
        if i >= len(chain):
            return None
        target = self.modules.get(modname)
        if target is None:
            return None
        return self.resolve_name(target, chain[i])

    # -- dependency extraction ---------------------------------------------

    def dependencies(self, info: ModuleInfo, node: ast.AST) -> set[DefRef]:
        """Repo-local definitions a def/class node refers to."""
        deps: set[DefRef] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                ref = self.resolve_name(info, sub.id)
                if ref is not None:
                    deps.add(ref)
            elif isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, ast.Load
            ):
                chain = _attribute_chain(sub)
                if chain is not None:
                    ref = self.resolve_dotted(info, chain)
                    if ref is not None:
                        deps.add(ref)
        return deps

    def find_def(self, modname: str, qualname: str) -> ast.AST | None:
        """The def node for a (possibly dotted) qualified name."""
        info = self.modules.get(modname)
        if info is None:
            return None
        parts = qualname.split(".")
        node: ast.AST | None = info.defs.get(parts[0])
        for part in parts[1:]:
            if node is None:
                return None
            node = next(
                (
                    child
                    for child in ast.iter_child_nodes(node)
                    if isinstance(
                        child,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    )
                    and child.name == part
                ),
                None,
            )
        return node

    def package_defs(self, prefix: str) -> list[DefRef]:
        """Every top-level definition in every module under a prefix."""
        refs: list[DefRef] = []
        for modname in sorted(self.modules):
            if modname == prefix or modname.startswith(prefix + "."):
                info = self.modules[modname]
                refs.extend((modname, name) for name in sorted(info.defs))
        return refs

    # -- transitive closure + fingerprint ----------------------------------

    def closure(
        self,
        roots: list[DefRef],
        boundaries: dict[str, str] | None = None,
    ) -> tuple[dict[DefRef, ast.AST], set[str]]:
        """Transitive repo-local dependency closure of a root set.

        Args:
            roots: the definitions to start from.
            boundaries: module prefix -> lock-entry name; a dependency
                resolving under a prefix is recorded as that entry's
                opaque marker instead of being walked (roots are never
                cut, so an entry can hash its own package).

        Returns:
            ``(defs, markers)``: the resolved definitions and the
            boundary-entry markers encountered.
        """
        boundaries = boundaries or {}
        root_set = set(roots)
        defs: dict[DefRef, ast.AST] = {}
        markers: set[str] = set()
        todo = sorted(root_set)
        seen: set[DefRef] = set(todo)
        while todo:
            ref = todo.pop()
            modname, qualname = ref
            if ref not in root_set:
                entry = self._boundary_entry(modname, boundaries)
                if entry is not None:
                    markers.add(entry)
                    continue
            node = self.find_def(modname, qualname)
            if node is None:
                continue
            defs[ref] = node
            info = self.modules[modname]
            for dep in sorted(self.dependencies(info, node)):
                if dep not in seen:
                    seen.add(dep)
                    todo.append(dep)
        return defs, markers

    @staticmethod
    def _boundary_entry(
        modname: str, boundaries: dict[str, str]
    ) -> str | None:
        for prefix in sorted(boundaries):
            if modname == prefix or modname.startswith(prefix + "."):
                return boundaries[prefix]
        return None

    def fingerprint(
        self,
        roots: list[DefRef],
        boundaries: dict[str, str] | None = None,
    ) -> str:
        """Stable hash of the closure's normalized ASTs."""
        defs, markers = self.closure(roots, boundaries)
        digest = hashlib.sha256()
        for modname, qualname in sorted(defs):
            digest.update(f"{modname}:{qualname}\n".encode())
            digest.update(
                normalized_dump(defs[(modname, qualname)]).encode()
            )
            digest.update(b"\0")
        for marker in sorted(markers):
            digest.update(f"@{marker}\0".encode())
        return "sha256:" + digest.hexdigest()


def _attribute_chain(node: ast.Attribute) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None when the base is not a Name."""
    parts: list[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


def normalized_dump(node: ast.AST) -> str:
    """A stable AST dump: no docstrings, positions, or empty fields.

    Comments never reach the AST, positions are attributes (never
    emitted), and docstrings are stripped first — so the dump is
    invariant under reformatting, commenting, and docstring edits; it
    moves only when the executable structure of the code does.

    Unlike ``ast.dump``, fields that are ``None`` or empty lists are
    omitted: newer interpreters grow nodes by adding optional fields
    (``type_params`` in 3.12, ``type_comment`` before that), and the
    committed lockfile must hash identically across the CI version
    matrix.
    """
    return _dump(_strip_docstrings(copy.deepcopy(node)))


def _dump(value) -> str:
    if isinstance(value, ast.AST):
        parts = []
        for name, field_value in ast.iter_fields(value):
            if field_value is None:
                continue
            if isinstance(field_value, list) and not field_value:
                continue
            parts.append(f"{name}={_dump(field_value)}")
        return f"{type(value).__name__}({', '.join(parts)})"
    if isinstance(value, list):
        return "[" + ", ".join(_dump(item) for item in value) + "]"
    return repr(value)


def _strip_docstrings(node: ast.AST) -> ast.AST:
    for sub in ast.walk(node):
        if isinstance(
            sub, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            body = sub.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                del body[0]
                if not body:
                    body.append(ast.Pass())
    return node
