"""Line-of-sight hop feasibility (paper §3.1 and §6.5).

A microwave hop between two towers is feasible when the sight line
between the two antennae clears, at every interior sample point,

    terrain + clutter + Earth-bulge + first-Fresnel-zone radius.

Antennae are mounted at ``usable_height_fraction`` of the tower height
(§6.5 explores fractions below 1.0 when the tower top is unavailable).
Hops longer than the radio's maximum range are infeasible outright.

The batch checker vectorizes the profile sampling across many candidate
pairs at once, which is what makes continental-scale hop enumeration
tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo.coords import EARTH_RADIUS_KM, haversine_km
from ..geo.fresnel import RadioProfile
from ..geo.terrain import TerrainModel
from .registry import Tower

#: Ground clutter allowance (trees, low buildings) on top of bare
#: terrain, metres.  The paper's NASA dataset embeds canopy height; we
#: carry it as an explicit constant.
DEFAULT_CLUTTER_M = 12.0


@dataclass(frozen=True)
class LosConfig:
    """Feasibility-check parameters.

    Attributes:
        radio: physical-layer constants (frequency, K-factor, range).
        usable_height_fraction: fraction of the tower height available
            for mounting (1.0 = the top; §6.5 tests 0.85/0.65/0.45).
        clutter_m: clutter allowance added to terrain.
        sample_spacing_km: terrain sampling interval along the profile.
        min_samples: minimum interior profile samples per hop.
        max_samples: cap on per-hop samples (memory bound in batches).
    """

    radio: RadioProfile = RadioProfile()
    usable_height_fraction: float = 1.0
    clutter_m: float = DEFAULT_CLUTTER_M
    sample_spacing_km: float = 3.0
    min_samples: int = 9
    max_samples: int = 48

    def __post_init__(self) -> None:
        if not 0.0 < self.usable_height_fraction <= 1.0:
            raise ValueError("usable height fraction must be in (0, 1]")
        if self.clutter_m < 0:
            raise ValueError("clutter must be non-negative")
        if self.min_samples < 3:
            raise ValueError("need at least 3 samples")


def _unit_vectors(lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """(n, 3) unit vectors on the sphere for coordinate arrays."""
    phi = np.radians(lats)
    lam = np.radians(lons)
    return np.stack(
        [np.cos(phi) * np.cos(lam), np.cos(phi) * np.sin(lam), np.sin(phi)], axis=-1
    )


def profile_sample_points(
    lat_a: np.ndarray,
    lon_a: np.ndarray,
    lat_b: np.ndarray,
    lon_b: np.ndarray,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Interior great-circle sample coordinates for aligned endpoint arrays.

    Returns (sample_lats, sample_lons), each of shape (n, m).  Fractions
    exclude the endpoints (towers clear themselves); interpolation is
    spherical (slerp), exact on the sphere.
    """
    lat_a = np.atleast_1d(np.asarray(lat_a, dtype=float))
    lon_a = np.atleast_1d(np.asarray(lon_a, dtype=float))
    lat_b = np.atleast_1d(np.asarray(lat_b, dtype=float))
    lon_b = np.atleast_1d(np.asarray(lon_b, dtype=float))
    d = np.atleast_1d(haversine_km(lat_a, lon_a, lat_b, lon_b))
    t_frac = np.linspace(0.0, 1.0, m + 2)[1:-1]
    va = _unit_vectors(lat_a, lon_a)
    vb = _unit_vectors(lat_b, lon_b)
    omega = d / EARTH_RADIUS_KM
    sin_omega = np.sin(omega)
    sin_omega = np.where(sin_omega < 1e-12, 1.0, sin_omega)
    wa = np.sin((1.0 - t_frac)[None, :] * omega[:, None]) / sin_omega[:, None]
    wb = np.sin(t_frac[None, :] * omega[:, None]) / sin_omega[:, None]
    pts = wa[..., None] * va[:, None, :] + wb[..., None] * vb[:, None, :]
    norm = np.linalg.norm(pts, axis=-1, keepdims=True)
    pts = pts / np.where(norm > 0, norm, 1.0)
    sample_lats = np.degrees(np.arcsin(np.clip(pts[..., 2], -1.0, 1.0)))
    sample_lons = np.degrees(np.arctan2(pts[..., 1], pts[..., 0]))
    return sample_lats, sample_lons


class LosChecker:
    """Vectorized line-of-sight feasibility for tower pairs.

    Terrain access goes through :meth:`profile_terrain_m` and
    :meth:`ground_elevation_m`, which subclasses may override — the
    candidate-hop pipeline's :class:`~repro.core.pipeline.CachingLosChecker`
    memoizes them so repeated enumerations (parameter sweeps, reruns)
    skip the terrain sampling entirely.
    """

    def __init__(self, terrain: TerrainModel, config: LosConfig | None = None):
        self.terrain = terrain
        self.config = config or LosConfig()

    def antenna_altitude_m(self, tower: Tower) -> float:
        """Antenna altitude above sea level: terrain + usable height."""
        ground = self.terrain.point_elevation_m(tower.point)
        return ground + tower.height_m * self.config.usable_height_fraction

    def hop_feasible(self, a: Tower, b: Tower) -> bool:
        """Single-pair convenience wrapper around :meth:`batch_feasible`."""
        return bool(self.batch_feasible([a], [b])[0])

    def sample_count(self, distance_km) -> np.ndarray:
        """Interior profile samples for hops of the given length(s).

        Deterministic per pair (independent of batch composition), so a
        hop's verdict is the same whether it is checked alone or inside
        any batch.
        """
        cfg = self.config
        d = np.asarray(distance_km, dtype=float)
        return np.clip(
            np.ceil(d / cfg.sample_spacing_km), cfg.min_samples, cfg.max_samples
        ).astype(int)

    def profile_terrain_m(
        self,
        lat_a: np.ndarray,
        lon_a: np.ndarray,
        lat_b: np.ndarray,
        lon_b: np.ndarray,
        m: int,
    ) -> np.ndarray:
        """Terrain heights at the m interior samples of each hop, (n, m)."""
        sample_lats, sample_lons = profile_sample_points(lat_a, lon_a, lat_b, lon_b, m)
        n = sample_lats.shape[0]
        return self.terrain.elevation_m(
            sample_lats.ravel(), sample_lons.ravel()
        ).reshape(n, m)

    def ground_elevation_m(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Terrain heights at tower bases, (n,)."""
        return np.atleast_1d(self.terrain.elevation_m(lats, lons))

    def batch_feasible(self, towers_a: list[Tower], towers_b: list[Tower]) -> np.ndarray:
        """Feasibility mask for aligned lists of tower pairs.

        Returns a boolean array of shape (len(pairs),).  Pairs beyond
        the radio range are infeasible.  Each pair's profile is sampled
        at its own :meth:`sample_count` (pairs of equal count are
        evaluated together), so verdicts are batch-invariant: checking
        a pair alone or inside any batch gives the same answer.
        """
        if len(towers_a) != len(towers_b):
            raise ValueError("tower lists must be aligned")
        if len(towers_a) == 0:
            return np.zeros(0, dtype=bool)
        return self.feasible_arrays(
            np.array([t.lat for t in towers_a]),
            np.array([t.lon for t in towers_a]),
            np.array([t.height_m for t in towers_a]),
            np.array([t.lat for t in towers_b]),
            np.array([t.lon for t in towers_b]),
            np.array([t.height_m for t in towers_b]),
        )

    def feasible_arrays(
        self,
        lat_a: np.ndarray,
        lon_a: np.ndarray,
        h_a: np.ndarray,
        lat_b: np.ndarray,
        lon_b: np.ndarray,
        h_b: np.ndarray,
        chunk_size: int | None = None,
    ) -> np.ndarray:
        """Feasibility mask for aligned endpoint coordinate/height arrays.

        The array-based core behind :meth:`batch_feasible`: applies the
        range filter, groups pairs by their deterministic per-pair
        sample count, and (optionally) bounds each vectorized batch at
        ``chunk_size`` pairs so memory stays flat on huge candidate
        sets.  The candidate-hop pipeline calls this directly.
        """
        cfg = self.config
        dist = np.atleast_1d(haversine_km(lat_a, lon_a, lat_b, lon_b))
        n = len(dist)
        in_range = (dist <= cfg.radio.max_range_km) & (dist > 1e-6)
        result = np.zeros(n, dtype=bool)
        if not in_range.any():
            return result
        samples = self.sample_count(dist)
        for m in np.unique(samples[in_range]):
            idx = np.where(in_range & (samples == m))[0]
            step = len(idx) if chunk_size is None else chunk_size
            for start in range(0, len(idx), step):
                sl = idx[start : start + step]
                result[sl] = self._feasible_at_samples(
                    lat_a[sl], lon_a[sl], h_a[sl],
                    lat_b[sl], lon_b[sl], h_b[sl],
                    dist[sl], int(m),
                )
        return result

    def _feasible_at_samples(
        self,
        lat_a: np.ndarray,
        lon_a: np.ndarray,
        h_a: np.ndarray,
        lat_b: np.ndarray,
        lon_b: np.ndarray,
        h_b: np.ndarray,
        d: np.ndarray,
        m: int,
    ) -> np.ndarray:
        """Verdicts for in-range pairs sharing one interior sample count."""
        cfg = self.config
        t_frac = np.linspace(0.0, 1.0, m + 2)[1:-1]
        terrain_m = self.profile_terrain_m(lat_a, lon_a, lat_b, lon_b, m)

        # Antenna altitudes at both ends.
        ground_a = self.ground_elevation_m(lat_a, lon_a)
        ground_b = self.ground_elevation_m(lat_b, lon_b)
        alt_a = ground_a + h_a * cfg.usable_height_fraction
        alt_b = ground_b + h_b * cfg.usable_height_fraction

        # Sight-line altitude at each sample (linear in along-path distance).
        sight = alt_a[:, None] + (alt_b - alt_a)[:, None] * t_frac[None, :]
        d1 = d[:, None] * t_frac[None, :]
        d2 = d[:, None] * (1.0 - t_frac[None, :])
        clearance = cfg.radio.clearance_m(d1, d2)
        obstruction = terrain_m + cfg.clutter_m + clearance
        return np.all(sight >= obstruction, axis=1)
