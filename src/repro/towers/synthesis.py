"""Synthetic tower infrastructure generator (FCC/rental database substitute).

The paper culls real tower databases to 12,080 towers whose key spatial
properties are: (a) every major population center has many towers in its
vicinity, (b) corridors between population centers carry chains of tall
towers (broadcast and relay infrastructure follows people and roads),
and (c) density falls off in rough, empty terrain (the Rockies are
singled out as a low-density area).

We synthesize towers with exactly those properties, deterministically
from a seed:

* *urban towers*: a population-scaled cluster around each site;
* *corridor towers*: chains with ~20-45 km spacing and lateral jitter
  along the geodesics between nearby site pairs;
* *rural scatter*: a sparse Poisson background over the bounding box,
  thinned where terrain is high.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.sites import Site
from ..geo.coords import destination_point, great_circle_points, initial_bearing_deg
from ..geo.terrain import TerrainModel
from .registry import Tower


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs for the synthetic tower field.

    Attributes:
        seed: RNG seed (full determinism).
        urban_base: towers for a city of ``urban_reference_pop`` people.
        urban_reference_pop: population yielding ``urban_base`` towers.
        urban_radius_km: cluster radius around each site.
        corridor_max_km: generate corridor chains only between site
            pairs closer than this.
        corridor_spacing_km: mean spacing of corridor towers.
        corridor_jitter_km: lateral displacement std-dev from the geodesic.
        rural_density_per_100km2: background scatter density.
        min_height_m / max_height_m: tower height range (uniform-ish).
        terrain_thinning_m: elevation above which rural/corridor towers
            are progressively thinned (mimics low density in mountains).
    """

    seed: int = 42
    urban_base: float = 22.0
    urban_reference_pop: float = 1_000_000.0
    urban_radius_km: float = 35.0
    corridor_max_km: float = 700.0
    corridor_spacing_km: float = 28.0
    corridor_jitter_km: float = 2.5
    rural_density_per_100km2: float = 0.035
    min_height_m: float = 60.0
    max_height_m: float = 320.0
    terrain_thinning_m: float = 1400.0


def _sample_heights(rng: np.random.Generator, n: int, cfg: SynthesisConfig) -> np.ndarray:
    """Tower heights: mixture favoring the 80-150 m broadcast class."""
    base = rng.gamma(shape=3.0, scale=38.0, size=n) + cfg.min_height_m
    return np.clip(base, cfg.min_height_m, cfg.max_height_m)


def _keep_by_terrain(
    rng: np.random.Generator,
    lats: np.ndarray,
    lons: np.ndarray,
    terrain: TerrainModel | None,
    cfg: SynthesisConfig,
) -> np.ndarray:
    """Boolean mask thinning towers on high terrain."""
    if terrain is None or len(lats) == 0:
        return np.ones(len(lats), dtype=bool)
    elev = terrain.elevation_m(lats, lons)
    # Keep probability decays with elevation above the thinning knee.
    keep_prob = np.exp(-np.maximum(elev - cfg.terrain_thinning_m, 0.0) / 900.0)
    return rng.random(len(lats)) < keep_prob


def _gabriel_pairs(sites: list[Site]) -> list[tuple[int, int]]:
    """Gabriel-graph edges over sites (indices), via pairwise distances.

    Edge (i, j) is kept iff no third site k satisfies
    d(i,k)^2 + d(j,k)^2 < d(i,j)^2 (i.e., lies inside the circle with
    diameter ij).  Uses great-circle distances, which preserves the
    Gabriel condition well at continental scales.
    """
    n = len(sites)
    if n < 2:
        return []
    from ..geo.coords import pairwise_distance_matrix

    lats = [s.lat for s in sites]
    lons = [s.lon for s in sites]
    d = pairwise_distance_matrix(lats, lons)
    d2 = d * d
    pairs = []
    for i in range(n):
        for j in range(i + 1, n):
            # Vectorized check over all potential blockers k.
            blocked = d2[i] + d2[j] < d2[i, j]
            blocked[i] = blocked[j] = False
            if not blocked.any():
                pairs.append((i, j))
    return pairs


def synthesize_towers(
    sites: list[Site],
    terrain: TerrainModel | None = None,
    config: SynthesisConfig | None = None,
) -> list[Tower]:
    """Generate a deterministic synthetic tower field for ``sites``.

    Returns towers with contiguous ids, a mix of "rental" (urban and
    corridor) and "fcc" (rural scatter) provenance tags so the culling
    rules of :mod:`repro.towers.registry` exercise both branches.
    """
    cfg = config or SynthesisConfig()
    rng = np.random.default_rng(cfg.seed)
    lats: list[float] = []
    lons: list[float] = []
    sources: list[str] = []

    # --- Urban clusters -------------------------------------------------
    for site in sites:
        pop = max(site.population, 50_000)
        n = max(3, int(rng.poisson(cfg.urban_base * (pop / cfg.urban_reference_pop) ** 0.5)))
        radii = cfg.urban_radius_km * np.sqrt(rng.random(n))
        bearings = rng.uniform(0.0, 360.0, n)
        for r, b in zip(radii, bearings):
            p = destination_point(site.lat, site.lon, float(b), float(r))
            lats.append(p.lat)
            lons.append(p.lon)
            sources.append("rental")

    # --- Corridor chains -------------------------------------------------
    # Real relay/broadcast infrastructure follows inter-city corridors
    # (highways), which the Gabriel graph of the sites approximates well:
    # an edge (a, b) survives iff no third site sits inside the circle
    # with diameter ab.  This yields O(n) corridors instead of O(n^2).
    corridor_lats: list[float] = []
    corridor_lons: list[float] = []
    for i, j in _gabriel_pairs(sites):
        a, b = sites[i], sites[j]
        dist = a.distance_km(b)
        if dist <= cfg.corridor_max_km and dist >= 2 * cfg.corridor_spacing_km:
            n_hops = int(dist / cfg.corridor_spacing_km)
            path_lats, path_lons = great_circle_points(a.point, b.point, n_hops + 1)
            bearing = initial_bearing_deg(a.lat, a.lon, b.lat, b.lon)
            for k in range(1, n_hops):
                jitter = float(rng.normal(0.0, cfg.corridor_jitter_km))
                p = destination_point(
                    float(path_lats[k]), float(path_lons[k]), bearing + 90.0, jitter
                )
                corridor_lats.append(p.lat)
                corridor_lons.append(p.lon)
    keep = _keep_by_terrain(
        rng, np.array(corridor_lats), np.array(corridor_lons), terrain, cfg
    )
    for k, (la, lo) in enumerate(zip(corridor_lats, corridor_lons)):
        if keep[k]:
            lats.append(la)
            lons.append(lo)
            sources.append("rental")

    # --- Rural scatter ----------------------------------------------------
    if sites:
        lat_arr = np.array([s.lat for s in sites])
        lon_arr = np.array([s.lon for s in sites])
        lat_lo, lat_hi = lat_arr.min() - 1.0, lat_arr.max() + 1.0
        lon_lo, lon_hi = lon_arr.min() - 1.0, lon_arr.max() + 1.0
        # Approximate area in units of 100 km^2.
        mean_lat = np.radians((lat_lo + lat_hi) / 2.0)
        area = (
            (lat_hi - lat_lo)
            * 111.19
            * (lon_hi - lon_lo)
            * 111.19
            * np.cos(mean_lat)
            / 100.0
        )
        n_rural = int(max(area, 0.0) * cfg.rural_density_per_100km2)
        r_lats = rng.uniform(lat_lo, lat_hi, n_rural)
        r_lons = rng.uniform(lon_lo, lon_hi, n_rural)
        keep = _keep_by_terrain(rng, r_lats, r_lons, terrain, cfg)
        for k in range(n_rural):
            if keep[k]:
                lats.append(float(r_lats[k]))
                lons.append(float(r_lons[k]))
                sources.append("fcc")

    heights = _sample_heights(rng, len(lats), cfg)
    # FCC-sourced towers skew taller (registered structures >60 m; the
    # paper keeps only those above 100 m).
    towers = []
    for i, (la, lo, src) in enumerate(zip(lats, lons, sources)):
        h = float(heights[i])
        if src == "fcc":
            h = max(h, 80.0 + 140.0 * float(rng.random()))
        la = float(np.clip(la, -89.9, 89.9))
        lo = float(np.clip(lo, -179.9, 179.9))
        towers.append(Tower(tower_id=i, lat=la, lon=lo, height_m=h, source=src))
    return towers
