"""Probabilistic tower acquisition and path refinement (paper §6.5).

"In practice, to improve accuracy in preparation for building a MW
route, we assign each tower in a swathe connecting the sites an
acquisition probability, which depends on a number of factors (e.g.,
tower type, ownership, location).  Further, for towers that can be
acquired, we use a uniform distribution to model the height at which
space for antennae is available.  With this probabilistic model, we
compute thousands of candidate MW paths between site pairs, with
refinements as acquisitions and height availabilities are confirmed."

This module implements that engineering workflow: draw acquisition
outcomes, re-run the shortest-path link computation per draw, and
summarize the spread of achievable latency — then *refine* by pinning
confirmed towers and re-drawing the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..datasets.sites import Site
from .hops import HopGraph
from .registry import TowerRegistry

#: Default site-to-tower attachment radius, mirrored from
#: repro.links.builder (imported lazily there to avoid a package cycle).
DEFAULT_SITE_ATTACH_KM = 25.0


@dataclass(frozen=True)
class AcquisitionModel:
    """Per-tower acquisition probabilities and usable-height draws.

    Attributes:
        rental_acquire_prob: probability a rental-company tower can be
            leased (high: that is their business).
        fcc_acquire_prob: probability a registered broadcast tower has
            space and a willing owner.
        min_height_fraction / max_height_fraction: the uniform range
            from which the *available* mounting height is drawn on
            acquired towers.
    """

    rental_acquire_prob: float = 0.9
    fcc_acquire_prob: float = 0.55
    min_height_fraction: float = 0.4
    max_height_fraction: float = 1.0

    def __post_init__(self) -> None:
        for p in (self.rental_acquire_prob, self.fcc_acquire_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")
        if not 0.0 < self.min_height_fraction <= self.max_height_fraction <= 1.0:
            raise ValueError("height fractions must satisfy 0 < min <= max <= 1")


@dataclass(frozen=True)
class CandidatePath:
    """One sampled buildable path.

    Attributes:
        draw: sample index.
        mw_km: path length.
        stretch: path length over the site pair's geodesic.
        tower_path: tower ids used.
    """

    draw: int
    mw_km: float
    stretch: float
    tower_path: tuple[int, ...]


@dataclass(frozen=True)
class AcquisitionStudy:
    """Monte-Carlo summary for one site pair.

    Attributes:
        paths: one entry per draw that remained connected.
        n_draws: total draws attempted.
        feasible_fraction: fraction of draws with any path.
    """

    paths: tuple[CandidatePath, ...]
    n_draws: int

    @property
    def feasible_fraction(self) -> float:
        return len(self.paths) / self.n_draws if self.n_draws else 0.0

    def stretch_percentile(self, q: float) -> float:
        if not self.paths:
            raise ValueError("no feasible paths")
        return float(np.percentile([p.stretch for p in self.paths], q))


def sample_acquisitions(
    registry: TowerRegistry,
    model: AcquisitionModel,
    rng: np.random.Generator,
    confirmed: dict[int, bool] | None = None,
) -> np.ndarray:
    """One acquisition draw: a boolean availability mask over towers.

    ``confirmed`` pins known outcomes (tower id -> acquired or not),
    the refinement step of the paper's workflow.
    """
    confirmed = confirmed or {}
    n = len(registry)
    mask = np.zeros(n, dtype=bool)
    for t in registry:
        prob = (
            model.rental_acquire_prob
            if t.source in ("rental", "city")
            else model.fcc_acquire_prob
        )
        mask[t.tower_id] = rng.random() < prob
    for tower_id, acquired in confirmed.items():
        mask[tower_id] = acquired
    return mask


def acquisition_study(
    site_a: Site,
    site_b: Site,
    registry: TowerRegistry,
    hop_graph: HopGraph,
    model: AcquisitionModel | None = None,
    n_draws: int = 200,
    confirmed: dict[int, bool] | None = None,
    attach_km: float = DEFAULT_SITE_ATTACH_KM,
    seed: int = 0,
) -> AcquisitionStudy:
    """Monte-Carlo candidate paths between two sites under acquisition
    uncertainty.

    Each draw removes unacquired towers and recomputes the shortest MW
    path.  The spread of resulting stretches is what route engineering
    quotes before confirming leases; re-running with ``confirmed``
    entries narrows it (refinement).
    """
    if n_draws <= 0:
        raise ValueError("need at least one draw")
    model = model or AcquisitionModel()
    geodesic = site_a.distance_km(site_b)
    if geodesic <= 0:
        raise ValueError("sites must be distinct")
    rng = np.random.default_rng(seed)

    n_towers = hop_graph.n_towers
    src, dst = n_towers, n_towers + 1
    n_nodes = n_towers + 2
    rows = list(hop_graph.edges_a) + list(hop_graph.edges_b)
    cols = list(hop_graph.edges_b) + list(hop_graph.edges_a)
    vals = list(hop_graph.lengths_km) * 2
    from ..links.builder import _site_attachment_edges

    s_rows, s_cols, s_vals = _site_attachment_edges(
        [site_a, site_b], registry, attach_km
    )
    rows += s_rows + s_cols
    cols += s_cols + s_rows
    vals += s_vals + s_vals
    rows = np.array(rows)
    cols = np.array(cols)
    vals = np.array(vals)

    paths: list[CandidatePath] = []
    for draw in range(n_draws):
        mask = sample_acquisitions(registry, model, rng, confirmed)
        # Keep edges whose tower endpoints (not site nodes) are acquired.
        ok_row = (rows >= n_towers) | mask[np.minimum(rows, n_towers - 1)] & (
            rows < n_towers
        )
        ok_row = np.where(rows < n_towers, mask[np.clip(rows, 0, n_towers - 1)], True)
        ok_col = np.where(cols < n_towers, mask[np.clip(cols, 0, n_towers - 1)], True)
        keep = ok_row & ok_col
        graph = csr_matrix(
            (vals[keep], (rows[keep], cols[keep])), shape=(n_nodes, n_nodes)
        )
        dist, pred = dijkstra(
            graph, directed=False, indices=src, return_predecessors=True
        )
        if not np.isfinite(dist[dst]):
            continue
        node_path = [dst]
        node = dst
        while pred[node] >= 0:
            node = int(pred[node])
            node_path.append(node)
        node_path.reverse()
        towers_used = tuple(v for v in node_path if v < n_towers)
        paths.append(
            CandidatePath(
                draw=draw,
                mw_km=float(dist[dst]),
                stretch=float(dist[dst] / geodesic),
                tower_path=towers_used,
            )
        )
    return AcquisitionStudy(paths=tuple(paths), n_draws=n_draws)


def refine_with_confirmations(
    study: AcquisitionStudy,
    site_a: Site,
    site_b: Site,
    registry: TowerRegistry,
    hop_graph: HopGraph,
    confirm_fraction: float = 0.3,
    model: AcquisitionModel | None = None,
    n_draws: int = 200,
    seed: int = 1,
) -> tuple[AcquisitionStudy, dict[int, bool]]:
    """One refinement round: confirm the most-used towers, re-sample.

    Confirms (as acquired) the towers that appear most often across the
    study's candidate paths — exactly the towers a build-out would lock
    in first — and returns the narrowed study plus the confirmations.
    """
    if not 0.0 < confirm_fraction <= 1.0:
        raise ValueError("confirm fraction must be in (0, 1]")
    if not study.paths:
        raise ValueError("cannot refine an infeasible study")
    counts: dict[int, int] = {}
    for path in study.paths:
        for t in path.tower_path:
            counts[t] = counts.get(t, 0) + 1
    ranked = sorted(counts, key=lambda t: -counts[t])
    n_confirm = max(1, int(len(ranked) * confirm_fraction))
    confirmed = {t: True for t in ranked[:n_confirm]}
    refined = acquisition_study(
        site_a,
        site_b,
        registry,
        hop_graph,
        model=model,
        n_draws=n_draws,
        confirmed=confirmed,
        seed=seed,
    )
    return refined, confirmed
