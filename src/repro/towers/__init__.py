"""Tower infrastructure: synthesis, registry, line-of-sight, hop graph."""

from .acquisition import (
    AcquisitionModel,
    AcquisitionStudy,
    CandidatePath,
    acquisition_study,
    refine_with_confirmations,
    sample_acquisitions,
)
from .hops import HopGraph, build_hop_graph, candidate_pairs
from .los import DEFAULT_CLUTTER_M, LosChecker, LosConfig
from .registry import (
    DEFAULT_DENSITY_CAP,
    DEFAULT_MIN_FCC_HEIGHT_M,
    CullingPolicy,
    Tower,
    TowerRegistry,
    cull_towers,
)
from .synthesis import SynthesisConfig, synthesize_towers

__all__ = [
    "AcquisitionModel",
    "AcquisitionStudy",
    "CandidatePath",
    "acquisition_study",
    "refine_with_confirmations",
    "sample_acquisitions",
    "HopGraph",
    "build_hop_graph",
    "candidate_pairs",
    "DEFAULT_CLUTTER_M",
    "LosChecker",
    "LosConfig",
    "DEFAULT_DENSITY_CAP",
    "DEFAULT_MIN_FCC_HEIGHT_M",
    "CullingPolicy",
    "Tower",
    "TowerRegistry",
    "cull_towers",
    "SynthesisConfig",
    "synthesize_towers",
]
