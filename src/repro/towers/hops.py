"""Feasible-hop graph construction (paper §4, Step 1 input).

Enumerates all tower pairs within radio range using a spatial grid,
checks line-of-sight feasibility in vectorized batches, and returns the
hop graph as edge arrays.  On the paper's US instantiation this step
found 261,019 feasible hops over 12,080 towers; our synthetic fields are
smaller but structurally equivalent.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..geo.coords import haversine_km
from .los import LosChecker
from .registry import Tower, TowerRegistry


@dataclass(frozen=True)
class HopGraph:
    """The feasible tower-to-tower hop graph.

    Attributes:
        n_towers: number of towers (node ids are 0..n_towers-1, matching
            registry order).
        edges_a / edges_b: aligned arrays of endpoint tower ids (a < b).
        lengths_km: great-circle length of each hop.
    """

    n_towers: int
    edges_a: np.ndarray
    edges_b: np.ndarray
    lengths_km: np.ndarray

    @property
    def n_edges(self) -> int:
        return len(self.edges_a)

    def degree_histogram(self) -> dict[int, int]:
        """Map of node degree -> count, for diagnostics."""
        deg = np.zeros(self.n_towers, dtype=int)
        for a, b in zip(self.edges_a, self.edges_b):
            deg[a] += 1
            deg[b] += 1
        hist: dict[int, int] = defaultdict(int)
        for d in deg:
            hist[int(d)] += 1
        return dict(hist)


def candidate_pairs(
    registry: TowerRegistry, max_range_km: float
) -> tuple[np.ndarray, np.ndarray]:
    """All tower pairs within ``max_range_km``, via grid bucketing.

    Returns aligned (a, b) index arrays with a < b.
    """
    lats, lons = registry.coordinates()
    n = len(registry)
    if n == 0:
        return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
    cell_deg = max(max_range_km / 110.0, 0.05)
    cell_i = np.floor(lats / cell_deg).astype(int)
    cell_j = np.floor(lons / cell_deg).astype(int)
    buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
    for k in range(n):
        buckets[(cell_i[k], cell_j[k])].append(k)

    pair_a: list[np.ndarray] = []
    pair_b: list[np.ndarray] = []
    # Longitude cells shrink with latitude; widen the search window.
    max_abs_lat = min(np.abs(lats).max() + 1.0, 85.0)
    lon_reach = int(np.ceil(1.0 / max(np.cos(np.radians(max_abs_lat)), 0.1)))
    for (ci, cj), members in buckets.items():
        members_arr = np.array(members)
        neighborhood: list[int] = []
        for di in range(0, 2):
            for dj in range(-lon_reach, lon_reach + 1):
                if di == 0 and dj < 0:
                    continue
                other = buckets.get((ci + di, cj + dj))
                if other is None:
                    continue
                if di == 0 and dj == 0:
                    # Within-cell pairs handled separately below.
                    continue
                neighborhood.extend(other)
        if len(members_arr) > 1:
            ii, jj = np.triu_indices(len(members_arr), k=1)
            pair_a.append(members_arr[ii])
            pair_b.append(members_arr[jj])
        if neighborhood:
            nb = np.array(neighborhood)
            aa = np.repeat(members_arr, len(nb))
            bb = np.tile(nb, len(members_arr))
            pair_a.append(np.minimum(aa, bb))
            pair_b.append(np.maximum(aa, bb))
    if not pair_a:
        return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
    a = np.concatenate(pair_a)
    b = np.concatenate(pair_b)
    # Deduplicate (cells at grid boundaries can produce repeats).
    keys = a.astype(np.int64) * n + b
    _, unique_idx = np.unique(keys, return_index=True)
    a, b = a[unique_idx], b[unique_idx]
    dist = haversine_km(lats[a], lons[a], lats[b], lons[b])
    mask = (dist <= max_range_km) & (a != b)
    return a[mask], b[mask]


def build_hop_graph(
    registry: TowerRegistry,
    checker: LosChecker,
    batch_size: int = 4096,
) -> HopGraph:
    """Check every in-range tower pair for LOS and assemble the hop graph."""
    max_range = checker.config.radio.max_range_km
    cand_a, cand_b = candidate_pairs(registry, max_range)
    towers = registry.towers
    keep_a: list[np.ndarray] = []
    keep_b: list[np.ndarray] = []
    for start in range(0, len(cand_a), batch_size):
        sl = slice(start, start + batch_size)
        batch_a = [towers[i] for i in cand_a[sl]]
        batch_b = [towers[i] for i in cand_b[sl]]
        ok = checker.batch_feasible(batch_a, batch_b)
        keep_a.append(cand_a[sl][ok])
        keep_b.append(cand_b[sl][ok])
    if keep_a:
        edges_a = np.concatenate(keep_a)
        edges_b = np.concatenate(keep_b)
    else:
        edges_a = np.zeros(0, dtype=int)
        edges_b = np.zeros(0, dtype=int)
    lats, lons = registry.coordinates()
    lengths = (
        haversine_km(lats[edges_a], lons[edges_a], lats[edges_b], lons[edges_b])
        if len(edges_a)
        else np.zeros(0)
    )
    return HopGraph(
        n_towers=len(registry),
        edges_a=edges_a,
        edges_b=edges_b,
        lengths_km=np.atleast_1d(lengths),
    )
