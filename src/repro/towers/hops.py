"""Feasible-hop graph construction (paper §4, Step 1 input).

Enumerates all tower pairs within radio range using a spatial grid,
checks line-of-sight feasibility in vectorized batches, and returns the
hop graph as edge arrays.  On the paper's US instantiation this step
found 261,019 feasible hops over 12,080 towers; our synthetic fields are
smaller but structurally equivalent.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .los import LosChecker
from .registry import TowerRegistry


@dataclass(frozen=True)
class HopGraph:
    """The feasible tower-to-tower hop graph.

    Attributes:
        n_towers: number of towers (node ids are 0..n_towers-1, matching
            registry order).
        edges_a / edges_b: aligned arrays of endpoint tower ids (a < b).
        lengths_km: great-circle length of each hop.
    """

    n_towers: int
    edges_a: np.ndarray
    edges_b: np.ndarray
    lengths_km: np.ndarray

    @property
    def n_edges(self) -> int:
        return len(self.edges_a)

    def degree_histogram(self) -> dict[int, int]:
        """Map of node degree -> count, for diagnostics."""
        deg = np.zeros(self.n_towers, dtype=int)
        for a, b in zip(self.edges_a, self.edges_b):
            deg[a] += 1
            deg[b] += 1
        hist: dict[int, int] = defaultdict(int)
        for d in deg:
            hist[int(d)] += 1
        return dict(hist)


def candidate_pairs(
    registry: TowerRegistry, max_range_km: float
) -> tuple[np.ndarray, np.ndarray]:
    """All tower pairs within ``max_range_km``, via the grid spatial index.

    Returns aligned (a, b) index arrays with a < b.  Thin wrapper over
    :class:`~repro.geo.spatial.GridIndex` for callers that hold a
    registry rather than raw coordinate arrays.
    """
    from ..geo.spatial import GridIndex

    lats, lons = registry.coordinates()
    if len(registry) == 0 or max_range_km <= 0:
        return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
    return GridIndex(lats, lons, max_range_km).pairs_within(max_range_km)


def build_hop_graph(
    registry: TowerRegistry,
    checker: LosChecker,
    batch_size: int = 4096,
) -> HopGraph:
    """Check every in-range tower pair for LOS and assemble the hop graph.

    Delegates to the candidate-hop pipeline
    (:mod:`repro.core.pipeline`): spatial pruning first, then chunked
    vectorized LoS.  Construct a
    :class:`~repro.core.pipeline.HopPipeline` directly to reuse terrain
    caches across enumerations.
    """
    from ..core.pipeline import HopPipeline

    return HopPipeline(checker, chunk_size=batch_size).enumerate_hops(registry)
