"""Tower registry: storage, culling, and spatial queries.

Substitute for the FCC Antenna Structure Registration database plus the
commercial rental-company databases (American Towers, Crown Castle, ...)
used in §4.  A :class:`TowerRegistry` holds towers and implements the
paper's culling rules:

* rental-company towers are always kept ("typically suitable for use");
* FCC towers are kept only above a height threshold (paper: 100 m);
* when density exceeds a cap per 0.5-degree grid cell, towers are
  randomly sampled down to the cap.

A simple uniform grid index provides radius queries.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..geo.coords import GeoPoint
from ..geo.spatial import KM_PER_DEG_LAT, GridIndex

#: Paper's FCC height cutoff, metres.
DEFAULT_MIN_FCC_HEIGHT_M = 100.0

#: Paper's density cap: 50 towers per 0.5-degree square grid cell.
DEFAULT_DENSITY_CAP = 50
DEFAULT_DENSITY_CELL_DEG = 0.5


@dataclass(frozen=True)
class Tower:
    """A transmission tower.

    Attributes:
        tower_id: unique integer id within a registry.
        lat: latitude, degrees.
        lon: longitude, degrees.
        height_m: structural height above ground.
        source: provenance tag, "fcc" or "rental".
    """

    tower_id: int
    lat: float
    lon: float
    height_m: float
    source: str = "fcc"

    def __post_init__(self) -> None:
        if self.height_m <= 0:
            raise ValueError("tower height must be positive")
        if self.source not in ("fcc", "rental", "city"):
            raise ValueError(f"unknown tower source {self.source!r}")

    @property
    def point(self) -> GeoPoint:
        return GeoPoint(self.lat, self.lon)


class TowerRegistry:
    """An indexed collection of towers with the paper's culling rules."""

    def __init__(self, towers: list[Tower], index_cell_deg: float = 0.5):
        if index_cell_deg <= 0:
            raise ValueError("index cell size must be positive")
        self._towers = list(towers)
        self._cell_deg = index_cell_deg
        self._index: GridIndex | None = None
        if self._towers:
            lats = np.array([t.lat for t in self._towers])
            lons = np.array([t.lon for t in self._towers])
            self._index = GridIndex(lats, lons, radius_km=index_cell_deg * KM_PER_DEG_LAT)

    @property
    def spatial_index(self) -> GridIndex | None:
        """The registry's grid index (None when empty)."""
        return self._index

    def __len__(self) -> int:
        return len(self._towers)

    def __iter__(self):
        return iter(self._towers)

    def __getitem__(self, tower_id: int) -> Tower:
        return self._towers[tower_id]

    @property
    def towers(self) -> list[Tower]:
        return list(self._towers)

    def coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """(lats, lons) arrays over all towers, in registry order."""
        lats = np.array([t.lat for t in self._towers])
        lons = np.array([t.lon for t in self._towers])
        return lats, lons

    def near(self, point: GeoPoint, radius_km: float) -> list[Tower]:
        """All towers within ``radius_km`` of ``point``."""
        if radius_km < 0:
            raise ValueError("radius must be non-negative")
        if self._index is None:
            return []
        idx = self._index.query_radius(point.lat, point.lon, radius_km)
        return [self._towers[i] for i in sorted(idx)]

    def count_near(self, point: GeoPoint, radius_km: float) -> int:
        """Number of towers within ``radius_km`` of ``point``."""
        return len(self.near(point, radius_km))


@dataclass(frozen=True)
class CullingPolicy:
    """The paper's database-culling parameters (§4).

    Attributes:
        min_fcc_height_m: keep FCC towers only above this height.
        density_cap: max towers kept per grid cell.
        density_cell_deg: grid cell edge, degrees.
        seed: RNG seed for the random down-sampling step.
    """

    min_fcc_height_m: float = DEFAULT_MIN_FCC_HEIGHT_M
    density_cap: int = DEFAULT_DENSITY_CAP
    density_cell_deg: float = DEFAULT_DENSITY_CELL_DEG
    seed: int = 0


def cull_towers(towers: list[Tower], policy: CullingPolicy | None = None) -> list[Tower]:
    """Apply the paper's culling rules and return the surviving towers.

    Ids are re-assigned contiguously so the result can seed a fresh
    :class:`TowerRegistry`.
    """
    policy = policy or CullingPolicy()
    eligible = [
        t
        for t in towers
        if t.source in ("rental", "city") or t.height_m >= policy.min_fcc_height_m
    ]
    cells: dict[tuple[int, int], list[Tower]] = defaultdict(list)
    for t in eligible:
        key = (
            int(np.floor(t.lat / policy.density_cell_deg)),
            int(np.floor(t.lon / policy.density_cell_deg)),
        )
        cells[key].append(t)
    rng = np.random.default_rng(policy.seed)
    kept: list[Tower] = []
    for key in sorted(cells):
        group = cells[key]
        if len(group) > policy.density_cap:
            chosen = rng.choice(len(group), size=policy.density_cap, replace=False)
            group = [group[i] for i in sorted(chosen)]
        kept.extend(group)
    return [
        Tower(tower_id=i, lat=t.lat, lon=t.lon, height_m=t.height_m, source=t.source)
        for i, t in enumerate(kept)
    ]
