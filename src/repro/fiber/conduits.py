"""Synthetic long-haul fiber conduit network (InterTubes substitute).

The design pipeline consumes exactly one property of the fiber plant:
the latency-equivalent fiber distance o_ij between every site pair
(shortest conduit route length x 1.5 for the refractive slowdown).  The
paper measures that latency-optimal fiber paths are ~1.93x away from
c-latency on average (§1), i.e., conduit routes are ~1.29x longer than
geodesics before the 1.5x slowdown.

We synthesize a conduit graph with that property: edges follow the
Gabriel graph of the sites (conduits follow highways/railways between
neighboring cities) with per-edge circuitousness drawn from a calibrated
distribution, plus the minimum spanning tree as a connectivity backstop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra, minimum_spanning_tree

from ..datasets.sites import Site
from ..geo.coords import FIBER_SLOWDOWN, pairwise_distance_matrix


@dataclass(frozen=True)
class FiberEdge:
    """A conduit between two sites.

    Attributes:
        site_a / site_b: endpoint indices into the site list (a < b).
        route_km: physical conduit length (>= geodesic distance).
    """

    site_a: int
    site_b: int
    route_km: float


@dataclass(frozen=True)
class FiberNetwork:
    """A conduit graph over a fixed site list."""

    n_sites: int
    edges: tuple[FiberEdge, ...]

    def adjacency(self) -> csr_matrix:
        """Sparse symmetric adjacency of conduit route lengths."""
        rows, cols, vals = [], [], []
        for e in self.edges:
            rows += [e.site_a, e.site_b]
            cols += [e.site_b, e.site_a]
            vals += [e.route_km, e.route_km]
        return csr_matrix((vals, (rows, cols)), shape=(self.n_sites, self.n_sites))

    def route_distance_matrix(self) -> np.ndarray:
        """All-pairs shortest conduit route length, km."""
        return dijkstra(self.adjacency(), directed=False)

    def latency_equivalent_matrix(self) -> np.ndarray:
        """All-pairs o_ij: fiber route length x 1.5 (latency-equivalent km).

        Dividing o_ij by the speed of light yields the one-way fiber
        latency; dividing by the geodesic distance yields the fiber
        stretch used throughout the paper.
        """
        return self.route_distance_matrix() * FIBER_SLOWDOWN


def _gabriel_edges(dist: np.ndarray) -> list[tuple[int, int]]:
    """Gabriel-graph edges from a pairwise distance matrix."""
    n = dist.shape[0]
    d2 = dist * dist
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            blocked = d2[i] + d2[j] < d2[i, j]
            blocked[i] = blocked[j] = False
            if not blocked.any():
                edges.append((i, j))
    return edges


def build_conduit_network(
    sites: list[Site],
    seed: int = 17,
    circuitousness_mean: float = 1.16,
    circuitousness_spread: float = 0.18,
) -> FiberNetwork:
    """Synthesize a conduit network over ``sites``.

    Args:
        sites: site list (edge indices refer to positions in this list).
        seed: RNG seed for per-edge circuitousness.
        circuitousness_mean: mean per-edge route inflation over geodesic.
        circuitousness_spread: spread of the inflation distribution.

    The default calibration lands the all-pairs mean *latency* stretch
    (1.5 x route / geodesic) near the paper's 1.93x.
    """
    n = len(sites)
    if n < 2:
        return FiberNetwork(n_sites=n, edges=())
    lats = [s.lat for s in sites]
    lons = [s.lon for s in sites]
    dist = pairwise_distance_matrix(lats, lons)
    rng = np.random.default_rng(seed)

    pairs = set(_gabriel_edges(dist))
    # Connectivity backstop: include MST edges (usually a subset of the
    # Gabriel graph, but guaranteed to connect everything).
    mst = minimum_spanning_tree(csr_matrix(dist))
    mst_coo = mst.tocoo()
    for i, j in zip(mst_coo.row, mst_coo.col):
        pairs.add((min(int(i), int(j)), max(int(i), int(j))))

    edges = []
    for i, j in sorted(pairs):
        # Inflation factor > 1; beta-shaped so extremes are rare.
        factor = 1.04 + (circuitousness_mean - 1.04) * 2.0 * rng.beta(2.2, 2.2)
        factor *= 1.0 + circuitousness_spread * (rng.random() - 0.5) * 0.5
        factor = max(factor, 1.02)
        edges.append(FiberEdge(site_a=i, site_b=j, route_km=float(dist[i, j] * factor)))
    return FiberNetwork(n_sites=n, edges=tuple(edges))


def fiber_stretch_matrix(network: FiberNetwork, sites: list[Site]) -> np.ndarray:
    """All-pairs fiber latency stretch (o_ij / geodesic), NaN on diagonal."""
    lats = [s.lat for s in sites]
    lons = [s.lon for s in sites]
    geo = pairwise_distance_matrix(lats, lons)
    o = network.latency_equivalent_matrix()
    with np.errstate(divide="ignore", invalid="ignore"):
        stretch = np.where(geo > 0, o / geo, np.nan)
    return stretch
