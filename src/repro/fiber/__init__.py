"""Synthetic long-haul fiber conduit network (InterTubes substitute)."""

from .conduits import (
    FiberEdge,
    FiberNetwork,
    build_conduit_network,
    fiber_stretch_matrix,
)

__all__ = [
    "FiberEdge",
    "FiberNetwork",
    "build_conduit_network",
    "fiber_stretch_matrix",
]
