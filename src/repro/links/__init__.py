"""Step 1: site-to-site microwave link candidates over the tower graph."""

from .builder import (
    DEFAULT_SITE_ATTACH_KM,
    CandidateLink,
    LinkCatalog,
    build_link_catalog,
)
from .disjoint import DisjointPath, tower_disjoint_paths

__all__ = [
    "DEFAULT_SITE_ATTACH_KM",
    "CandidateLink",
    "LinkCatalog",
    "build_link_catalog",
    "DisjointPath",
    "tower_disjoint_paths",
]
