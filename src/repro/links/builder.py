"""Step 1: best feasible tower-level connectivity per site pair (§3.1, §4).

Builds a graph whose nodes are towers plus the sites themselves (the
paper observes each site hosts enough towers to anchor many links), runs
a shortest-path computation from every site, and extracts for each site
pair the *link*: the shortest series of feasible tower hops.  The link's
latency is the distance along the chosen towers; its cost is the number
of towers it uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..datasets.sites import Site
from ..geo.coords import haversine_km
from ..towers.hops import HopGraph
from ..towers.registry import TowerRegistry

#: Towers within this radius of a site can serve as the link's first hop
#: (the paper: each site "hosts enough towers" for many links).
DEFAULT_SITE_ATTACH_KM = 25.0


@dataclass(frozen=True)
class CandidateLink:
    """A site-to-site microwave link found in Step 1.

    Attributes:
        site_a / site_b: endpoint indices into the scenario's site list
            (a < b).
        mw_km: distance along the tower series (the m_ij input of §3.2).
        n_towers: number of towers used (the link's cost c_ij in the
            tower-budget currency).
        tower_path: the tower ids along the path, in order.
    """

    site_a: int
    site_b: int
    mw_km: float
    n_towers: int
    tower_path: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.site_a >= self.site_b:
            raise ValueError("site_a must be < site_b")
        if self.mw_km <= 0:
            raise ValueError("link length must be positive")


@dataclass(frozen=True)
class LinkCatalog:
    """All Step-1 outputs for a scenario.

    Attributes:
        n_sites: number of sites.
        links: mapping (a, b) -> CandidateLink for connected pairs.
        mw_km: (n, n) matrix of MW link lengths (inf if infeasible).
        cost_towers: (n, n) matrix of tower counts (large if infeasible).
    """

    n_sites: int
    links: dict[tuple[int, int], CandidateLink]
    mw_km: np.ndarray
    cost_towers: np.ndarray

    def link(self, a: int, b: int) -> CandidateLink | None:
        """The candidate link between sites a and b, if one exists."""
        key = (min(a, b), max(a, b))
        return self.links.get(key)


def _site_attachment_edges(
    sites: list[Site], registry: TowerRegistry, attach_km: float
) -> tuple[list[int], list[int], list[float]]:
    """Edges connecting each site node to its nearby towers."""
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    n_towers = len(registry)
    for s_idx, site in enumerate(sites):
        nearby = registry.near(site.point, attach_km)
        for t in nearby:
            d = haversine_km(site.lat, site.lon, t.lat, t.lon)
            rows.append(n_towers + s_idx)
            cols.append(t.tower_id)
            vals.append(max(d, 0.1))
    return rows, cols, vals


def build_link_catalog(
    sites: list[Site],
    registry: TowerRegistry,
    hop_graph: HopGraph,
    attach_km: float = DEFAULT_SITE_ATTACH_KM,
) -> LinkCatalog:
    """Compute the shortest feasible MW link between every site pair.

    Sites unreachable through the tower graph get ``inf`` length and a
    prohibitive cost; the topology-design step will simply never select
    them (fiber remains available).
    """
    n_sites = len(sites)
    n_towers = hop_graph.n_towers
    n_nodes = n_towers + n_sites

    rows = list(hop_graph.edges_a) + list(hop_graph.edges_b)
    cols = list(hop_graph.edges_b) + list(hop_graph.edges_a)
    vals = list(hop_graph.lengths_km) * 2
    s_rows, s_cols, s_vals = _site_attachment_edges(sites, registry, attach_km)
    rows += s_rows + s_cols
    cols += s_cols + s_rows
    vals += s_vals + s_vals
    graph = csr_matrix(
        (np.array(vals), (np.array(rows), np.array(cols))), shape=(n_nodes, n_nodes)
    )

    site_indices = np.arange(n_towers, n_nodes)
    dist, predecessors = dijkstra(
        graph, directed=False, indices=site_indices, return_predecessors=True
    )

    links: dict[tuple[int, int], CandidateLink] = {}
    mw_km = np.full((n_sites, n_sites), np.inf)
    np.fill_diagonal(mw_km, 0.0)
    cost = np.full((n_sites, n_sites), np.inf)
    np.fill_diagonal(cost, 0.0)
    for a in range(n_sites):
        for b in range(a + 1, n_sites):
            d = dist[a, n_towers + b]
            if not np.isfinite(d):
                continue
            path = _reconstruct_path(predecessors[a], n_towers + b)
            towers_on_path = tuple(node for node in path if node < n_towers)
            link = CandidateLink(
                site_a=a,
                site_b=b,
                mw_km=float(d),
                n_towers=len(towers_on_path),
                tower_path=towers_on_path,
            )
            links[(a, b)] = link
            mw_km[a, b] = mw_km[b, a] = link.mw_km
            cost[a, b] = cost[b, a] = link.n_towers
    return LinkCatalog(n_sites=n_sites, links=links, mw_km=mw_km, cost_towers=cost)


def _reconstruct_path(predecessor_row: np.ndarray, target: int) -> list[int]:
    """Node sequence ending at ``target`` from a dijkstra predecessor row."""
    path = [target]
    node = target
    while predecessor_row[node] >= 0:
        node = int(predecessor_row[node])
        path.append(node)
    path.reverse()
    return path
