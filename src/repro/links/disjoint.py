"""Tower-disjoint shortest MW paths (paper §3.3 / Fig 4(b)).

For capacity augmentation the paper computes successive shortest paths
between two sites after removing all towers used by earlier paths,
showing that stretch degrades gracefully (1.02 -> ~1.15 over 20
iterations on the IL-CA link, vs. 1.75 over fiber).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..datasets.sites import Site
from ..geo.coords import haversine_km
from ..towers.hops import HopGraph
from ..towers.registry import TowerRegistry
from .builder import DEFAULT_SITE_ATTACH_KM, _reconstruct_path, _site_attachment_edges


@dataclass(frozen=True)
class DisjointPath:
    """One tower-disjoint path found in an iteration.

    Attributes:
        iteration: 0-based iteration index.
        mw_km: path length along the towers.
        stretch: mw_km / geodesic distance between the two sites.
        tower_path: towers used (these are removed for later iterations).
    """

    iteration: int
    mw_km: float
    stretch: float
    tower_path: tuple[int, ...]


def tower_disjoint_paths(
    site_a: Site,
    site_b: Site,
    registry: TowerRegistry,
    hop_graph: HopGraph,
    max_iterations: int = 20,
    attach_km: float = DEFAULT_SITE_ATTACH_KM,
) -> list[DisjointPath]:
    """Successive tower-disjoint shortest MW paths between two sites.

    Each iteration finds the shortest path through the remaining towers
    and then removes every tower it used.  Stops early when the sites
    become disconnected.
    """
    geodesic = site_a.distance_km(site_b)
    if geodesic <= 0:
        raise ValueError("sites must be distinct")
    n_towers = hop_graph.n_towers
    src = n_towers
    dst = n_towers + 1
    n_nodes = n_towers + 2

    rows = list(hop_graph.edges_a) + list(hop_graph.edges_b)
    cols = list(hop_graph.edges_b) + list(hop_graph.edges_a)
    vals = list(hop_graph.lengths_km) * 2
    s_rows, s_cols, s_vals = _site_attachment_edges(
        [site_a, site_b], registry, attach_km
    )
    rows += s_rows + s_cols
    cols += s_cols + s_rows
    vals += s_vals + s_vals
    base = csr_matrix(
        (np.array(vals), (np.array(rows), np.array(cols))), shape=(n_nodes, n_nodes)
    ).tolil()

    removed: set[int] = set()
    paths: list[DisjointPath] = []
    graph = base
    for it in range(max_iterations):
        dist, pred = dijkstra(
            graph.tocsr(), directed=False, indices=src, return_predecessors=True
        )
        if not np.isfinite(dist[dst]):
            break
        node_path = _reconstruct_path(pred, dst)
        towers_used = tuple(n for n in node_path if n < n_towers)
        paths.append(
            DisjointPath(
                iteration=it,
                mw_km=float(dist[dst]),
                stretch=float(dist[dst] / geodesic),
                tower_path=towers_used,
            )
        )
        for t in towers_used:
            removed.add(t)
            graph.rows[t] = []
            graph.data[t] = []
        # Also remove edges *into* removed towers.
        if towers_used:
            removed_set = set(towers_used)
            for node in range(n_nodes):
                row = graph.rows[node]
                if not row:
                    continue
                keep = [k for k, col in enumerate(row) if col not in removed_set]
                if len(keep) != len(row):
                    graph.rows[node] = [row[k] for k in keep]
                    graph.data[node] = [graph.data[node][k] for k in keep]
    return paths
