#!/usr/bin/env python3
"""Fast-path integration planning (paper §6.6 + §8).

An operator adopting cISP must decide which traffic earns a slot on the
bandwidth-scarce fast path.  This example designs a network, takes its
measured cost per GB, and fills its capacity with the most valuable
latency-sensitive traffic classes.

Run:  python examples/fastpath_planning.py
"""

from repro import design_network, us_scenario
from repro.apps import breakeven_capacity_gbps, plan_fast_path


def main() -> None:
    print("Designing a 30-city cISP at 1,000 towers / 50 Gbps...")
    scenario = us_scenario(n_sites=30)
    result = design_network(
        scenario.design_input(),
        budget_towers=1_000,
        aggregate_gbps=50,
        catalog=scenario.catalog,
        registry=scenario.registry,
        ilp_refinement=False,
    )
    cost = result.cost_per_gb_usd
    print(f"  stretch {result.mean_stretch:.3f}, cost ${cost:.2f}/GB\n")

    print("Filling the 50 Gbps fast path in value order (§6.6):")
    plan = plan_fast_path(capacity_gbps=50.0)
    print("  class             admitted     of its demand   $/GB")
    for alloc in plan.allocations:
        c = alloc.traffic_class
        print(
            f"  {c.name:16s} {alloc.admitted_gbps:6.1f} Gbps"
            f"   {alloc.fraction_admitted:12.0%}   ${c.value_per_gb:.2f}"
        )
    print(f"  total admitted: {plan.admitted_gbps():.1f} Gbps, "
          f"yearly value ${plan.value_per_year_usd / 1e6:.0f}M")

    breakeven = breakeven_capacity_gbps(cost)
    print(f"\nAt ${cost:.2f}/GB, up to {breakeven:.0f} Gbps of today's "
          "latency-sensitive traffic pays for its fast-path carriage —")
    print("the economic headroom behind the paper's cost-benefit argument.")


if __name__ == "__main__":
    main()
