#!/usr/bin/env python3
"""Weather resilience (Fig 7): a year of storms over a designed network.

Designs a mid-size US network, then replays a synthetic year of
precipitation against it: every sampled interval, hops whose ITU-R
P.838 rain attenuation exceeds the fade margin fail, their links drop
out, and traffic reroutes over surviving microwave + fiber.  Prints the
Fig 7 stretch distributions.

Run:  python examples/weather_resilience.py
"""

import numpy as np

from repro import solve_heuristic, us_scenario
from repro.weather import (
    PrecipitationYear,
    path_attenuation_db,
    yearly_stretch_analysis,
)


def main() -> None:
    print("Rain physics at 11 GHz (ITU-R P.838):")
    for rain in (5, 20, 50, 100):
        att = path_attenuation_db(50.0, rain)
        status = "FAILS" if att > 30 else "holds"
        print(f"  50 km hop in {rain:3d} mm/h rain: {att:5.1f} dB -> link {status}")

    print("\nDesigning a 40-city network (1,500-tower budget)...")
    scenario = us_scenario(n_sites=40)
    topology = solve_heuristic(
        scenario.design_input(), 1_500, ilp_refinement=False
    ).topology
    print(f"  {len(topology.mw_links)} MW links")

    print("Replaying a year of synthetic storms (365 intervals)...")
    result = yearly_stretch_analysis(
        topology,
        scenario.catalog,
        scenario.registry,
        precipitation=PrecipitationYear(seed=2015),
        n_intervals=365,
    )
    for label, values in (
        ("fair-weather best", result.best),
        ("99th percentile  ", result.p99),
        ("worst of the year", result.worst),
        ("fiber-only       ", result.fiber),
    ):
        print(
            f"  {label}: median stretch {np.median(values):.3f}, "
            f"p95 {np.percentile(values, 95):.3f}"
        )
    frac = (result.links_failed_per_interval > 0).mean()
    print(f"  intervals with any link down: {frac:.0%}; "
          f"worst interval lost {result.links_failed_per_interval.max()} links")
    print("  => even the worst-case latencies stay far below fiber "
          "(the paper's Fig 7 conclusion)")


if __name__ == "__main__":
    main()
