#!/usr/bin/env python3
"""Quickstart: design a small speed-of-light network in one page.

Builds a 30-city US scenario (synthetic towers + terrain + fiber),
designs a hybrid MW/fiber topology under a 1,000-tower budget,
provisions it for 50 Gbps, and prints the headline numbers the paper
optimizes for: mean latency stretch and cost per gigabyte.

Run:  python examples/quickstart.py
"""

from repro import design_network, us_scenario
from repro.geo import c_latency_ms


def main() -> None:
    print("Building the substrate (synthetic towers, terrain, fiber)...")
    scenario = us_scenario(n_sites=30)
    print(
        f"  {scenario.n_sites} cities, {len(scenario.registry)} towers, "
        f"{scenario.hop_graph.n_edges} feasible microwave hops"
    )

    print("Designing the topology (1,000-tower budget)...")
    result = design_network(
        scenario.design_input(),
        budget_towers=1_000,
        aggregate_gbps=50,
        catalog=scenario.catalog,
        registry=scenario.registry,
        ilp_refinement=False,
    )

    print(f"  built {result.mw_link_count} microwave links "
          f"({result.towers_used:.0f} towers)")
    print(f"  mean stretch: {result.mean_stretch:.3f}x c-latency "
          f"(all-fiber baseline: {result.fiber_mean_stretch:.3f}x)")
    print(f"  cost: ${result.cost_per_gb_usd:.2f} per GB at 50 Gbps")

    # What does that mean for a concrete pair?
    sites = scenario.sites
    stretch = result.topology.stretch_matrix()
    a, b = 0, 1
    geodesic = sites[a].distance_km(sites[b])
    print(
        f"\n  {sites[a].name} <-> {sites[b].name}: {geodesic:.0f} km, "
        f"c-latency {c_latency_ms(geodesic):.1f} ms, "
        f"cISP latency {c_latency_ms(geodesic) * stretch[a, b]:.1f} ms "
        f"(stretch {stretch[a, b]:.2f})"
    )


if __name__ == "__main__":
    main()
