#!/usr/bin/env python3
"""The paper's flagship experiment: a 120-city US cISP (Fig 3).

Designs the full contiguous-US network at a 3,000-tower budget,
provisions 100 Gbps, prints the link map summary, the capacity-
augmentation census, and the cost breakdown — then sweeps the budget to
show the stretch curve of Fig 4(a).

Run:  python examples/us_backbone.py        (takes ~1 minute)
"""

from collections import Counter

from repro import design_network, greedy_sequence, us_scenario
from repro.core import CostModel


def main() -> None:
    print("Building the full US scenario (120 population centers)...")
    scenario = us_scenario()
    design_input = scenario.design_input()

    print("Designing at a 3,000-tower budget, provisioning 100 Gbps...")
    result = design_network(
        design_input,
        budget_towers=3_000,
        aggregate_gbps=100,
        catalog=scenario.catalog,
        registry=scenario.registry,
        ilp_refinement=False,
    )
    print(f"  mean stretch {result.mean_stretch:.3f} (paper: 1.05), "
          f"fiber baseline {result.fiber_mean_stretch:.2f} (paper: 1.93)")

    aug = result.augmentation
    census = Counter(aug.hop_census)
    print(f"  hop census: {dict(sorted(census.items()))} "
          "(paper: {0: 1660, 1: 552, 2: 86})")
    model = CostModel()
    print(f"  capex ${model.capex_usd(aug.n_hop_series, aug.n_new_towers) / 1e6:.0f}M, "
          f"5-yr opex ${model.opex_usd(aug.n_rented_towers) / 1e6:.0f}M "
          f"-> ${result.cost_per_gb_usd:.2f}/GB (paper: $0.81)")

    # The largest links, annotated like Fig 3's color coding.
    print("\n  largest-demand links:")
    top = sorted(aug.provisions, key=lambda p: -p.demand_gbps)[:8]
    for p in top:
        a, b = p.link
        print(
            f"    {scenario.sites[a].name:15s} <-> {scenario.sites[b].name:15s} "
            f"{p.demand_gbps:6.1f} Gbps -> {p.n_series} series, "
            f"{p.new_towers} new towers"
        )

    print("\nBudget sweep (Fig 4a):")
    steps = greedy_sequence(design_input, 8_000)
    for budget in (500, 1_000, 2_000, 3_000, 4_000, 6_000, 8_000):
        prefix = [s for s in steps if s.cumulative_cost <= budget]
        if prefix:
            print(f"  {budget:5d} towers -> stretch {prefix[-1].mean_stretch:.3f}")


if __name__ == "__main__":
    main()
