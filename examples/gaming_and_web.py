#!/usr/bin/env python3
"""Application-level wins (Figs 12-13, §8): gaming, the web, and money.

Shows what a 3x latency reduction buys at the application layer:
thin-client gaming frame times with speculative execution, web page
load times, and the paper's value-per-GB arithmetic.

Run:  python examples/gaming_and_web.py
"""

import numpy as np

from repro.apps import (
    all_estimates,
    compare_corpus,
    fat_client_latency_ms,
    simulate_thin_client,
    synthesize_pages,
)


def main() -> None:
    print("Thin-client gaming (Fig 12): frame time vs conventional latency")
    print("  latency  conventional  with cISP augmentation")
    for lat in (50, 100, 200, 300):
        conv = simulate_thin_client(lat, use_augmentation=False)
        aug = simulate_thin_client(lat, use_augmentation=True)
        print(
            f"  {lat:4d} ms  {conv.mean_frame_time_ms:9.0f} ms  "
            f"{aug.mean_frame_time_ms:9.0f} ms "
            f"(speculation hit rate {aug.speculation_hit_rate:.0%})"
        )
    print(f"  fat client: a 90 ms action RTT becomes "
          f"{fat_client_latency_ms(90.0):.0f} ms\n")

    print("Web browsing (Fig 13): 80 synthetic pages, RTT x 0.33")
    cmp = compare_corpus(synthesize_pages(80))
    print(f"  median PLT: {np.median(cmp.baseline_plts):.0f} ms -> "
          f"{np.median(cmp.cisp_plts):.0f} ms "
          f"({cmp.median_plt_reduction('cisp'):.0%} faster; paper: 31%)")
    print(f"  selective (client->server only, "
          f"{cmp.upstream_byte_fraction:.1%} of bytes): "
          f"{cmp.median_plt_reduction('selective'):.0%} faster")
    print(f"  object load times: {cmp.median_olt_reduction():.0%} faster; "
          f"small objects {cmp.median_olt_reduction(small_only=True):.0%}\n")

    print("Cost-benefit (§8): value per GB vs cISP's ~$0.81/GB cost")
    for est in all_estimates():
        print(
            f"  {est.label:11s} ${est.low_usd_per_gb:5.2f} - "
            f"${est.high_usd_per_gb:5.2f} per GB "
            f"-> {'justifies' if est.exceeds_cost(0.81) else 'fails'} the network"
        )


if __name__ == "__main__":
    main()
