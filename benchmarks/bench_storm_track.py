"""Storm-track gate: delta-reuse failure-set solver >= 10x, <= 1e-9.

PR 5's ``YearlyWeatherEvaluator`` memoizes whole failure *sets*: every
distinct failed-link frozenset still pays one full dense all-pairs
solve.  A storm track breaks that memo in the worst way — the failed
set changes by one or two links *every day*, so a daily-resolution
year produces hundreds of distinct sets that are all near-identical.
The ``FailureSetSolver`` behind ``delta_k > 0`` answers those from
cached neighbors instead: supersets restore down by exact O(n^2)
insertion rules, gated removal restarts fall back to one padded
*union* solve per newly seen link, and everything else is a memo hit.

Workload: a synthetic 320-site continental backbone (the ``Topology``
is constructed directly — no design solve — with fiber at a flat
1.5x geodesic stretch and a 3-nearest-neighbor MW mesh, the same
shape the Europe scenario uses) and a year of storm-track failure
sets: a rain band sits over a longitude-sorted corridor of 12 MW
links, flips one or two links per day inside its 10-link window, and
drifts slowly eastward.  Consecutive sets differ by <= 2 links —
the regime the delta route is built for — yet the year still holds
~300 *distinct* sets, so the memo-only evaluator pays ~300 full
solves where the delta evaluator pays roughly one per corridor link.

Both evaluators run the *same* query stream interleaved day by day,
each timed separately.  On a shared single-vCPU runner the host's
clock speed drifts minute to minute; interleaving keeps both sides
inside the same drift so the *ratio* stays honest (back-to-back runs
were seen swinging ~2x on wall-clock while the interleaved ratio held
steady).  Gates:

1. the ``delta_k=2`` evaluator must be >= 10x faster than the
   ``delta_k=0`` (PR 5 memo-only) evaluator over the 365-day stream;
2. every daily stretch row must match the memo-only row to <= 1e-9
   relative — the delta route's accuracy contract;
3. the delta route must actually carry the year: full solves stay
   within a handful of the corridor's link count (one padded union
   solve per newly seen link, not one per distinct set).

Each run appends to the ``BENCH_weather.json`` perf trajectory.
"""

import gc
import time

import numpy as np

from repro.core.topology import DesignInput, Topology
from repro.datasets.sites import Site
from repro.geo.coords import pairwise_distance_matrix
from repro.links.builder import CandidateLink, LinkCatalog
from repro.towers.registry import Tower, TowerRegistry
from repro.traffic.matrices import population_product_matrix
from repro.weather import YearlyWeatherEvaluator

from _support import report, write_bench_json

#: Acceptance threshold (see module docstring).
MIN_SPEEDUP = 10.0

#: Stretch-row parity tolerance for the delta route (relative).
RTOL = 1e-9

#: Workload: continental scale, one failure set per day for a year.
N_SITES = 320
N_DAYS = 365
CORRIDOR_LINKS = 12
STORM_WIDTH = 10
P_ADVANCE = 0.02
SEED = 821

#: Solver tuning under test (the library defaults).
DELTA_K = 2
RESTORE_K = 12
CACHE_MB = 1024.0

#: Full solves may exceed the corridor's link count only by this much
#: (the base solve plus a couple of cold-start unions).
FULL_SOLVE_SLACK = 4


def synthetic_continental(
    n_sites: int, seed: int = SEED, neighbors: int = 3
) -> tuple[Topology, LinkCatalog, TowerRegistry]:
    """A continental-scale hybrid topology, built without a design solve.

    Random sites across the continental US envelope, fiber at a flat
    1.5x geodesic stretch, and a MW overlay connecting each site to
    its ``neighbors`` nearest peers at geodesic length.  The fabricated
    catalog/registry give every link one two-tower hop — enough for
    the evaluator's bookkeeping; the benchmark feeds failure sets
    directly, so no rain physics runs.
    """
    rng = np.random.default_rng(seed)
    lats = rng.uniform(28.0, 47.0, n_sites)
    lons = rng.uniform(-122.0, -71.0, n_sites)
    pops = rng.integers(50_000, 5_000_000, n_sites)
    sites = tuple(
        Site(f"s{i:03d}", float(lats[i]), float(lons[i]), int(pops[i]))
        for i in range(n_sites)
    )
    geo = pairwise_distance_matrix(list(lats), list(lons))
    fiber = 1.5 * geo
    np.fill_diagonal(fiber, 0.0)
    links: set[tuple[int, int]] = set()
    order = np.argsort(geo, axis=1)
    for a in range(n_sites):
        for b in order[a, 1 : neighbors + 1]:
            links.add((min(a, int(b)), max(a, int(b))))
    mw = np.full_like(geo, np.inf)
    cost = np.full_like(geo, np.inf)
    catalog_links = {}
    for a, b in sorted(links):
        mw[a, b] = mw[b, a] = geo[a, b]
        cost[a, b] = cost[b, a] = 2.0
        catalog_links[(a, b)] = CandidateLink(a, b, float(geo[a, b]), 2, (a, b))
    design = DesignInput(
        sites=sites,
        traffic=population_product_matrix(list(sites)),
        geodesic_km=geo,
        mw_km=mw,
        cost_towers=cost,
        fiber_km=fiber,
    )
    catalog = LinkCatalog(
        n_sites=n_sites, links=catalog_links, mw_km=mw, cost_towers=cost
    )
    registry = TowerRegistry(
        [Tower(i, float(lats[i]), float(lons[i]), 60.0) for i in range(n_sites)]
    )
    return Topology(design=design, mw_links=frozenset(links)), catalog, registry


def storm_track_sets(
    topology: Topology,
    seed: int = SEED,
    corridor_len: int = CORRIDOR_LINKS,
    width: int = STORM_WIDTH,
    p_adv: float = P_ADVANCE,
    n_days: int = N_DAYS,
) -> list[frozenset]:
    """One failure set per day from a slowly drifting storm band.

    The corridor is the ``corridor_len`` most central MW links by
    longitude; the storm occupies a ``width``-link window that flips
    one or two member links per day and advances east with probability
    ``p_adv``.  A link stranded behind the departing window recovers
    before anything else flips, so consecutive sets never differ by
    more than two links.
    """
    rng = np.random.default_rng(seed)

    def mid_lon(link):
        a, b = link
        sa, sb = topology.design.sites[a], topology.design.sites[b]
        return (sa.lon + sb.lon) / 2.0

    corridor = sorted(topology.mw_links, key=mid_lon)
    start = (len(corridor) - corridor_len) // 2
    corridor = corridor[start : start + corridor_len]
    max_p = corridor_len - width
    p = 0
    current: set = set()
    out: list[frozenset] = []
    for _ in range(n_days):
        window = corridor[p : p + width]
        flips = []
        if p_adv > 0 and rng.random() < p_adv and p < max_p:
            p += 1
            window = corridor[p : p + width]
        stranded = sorted(set(current) - set(window))
        if stranded:
            flips.append(stranded[0])
        k = int(rng.integers(0 if flips else 1, 3 - len(flips)))
        for i in rng.choice(width, size=k, replace=False):
            flips.append(window[int(i)])
        for link in flips:
            current.symmetric_difference_update([link])
        out.append(frozenset(current))
    return out


def main() -> None:
    t0 = time.perf_counter()
    topology, catalog, registry = synthetic_continental(N_SITES)
    topology.effective_distance_matrix()  # warm the shared base solve
    t_build = time.perf_counter() - t0

    sets = storm_track_sets(topology)
    distinct = len(set(sets))
    corridor_links = len(set().union(*sets))
    max_step = max(len(a ^ b) for a, b in zip(sets, sets[1:]))
    assert max_step <= 2, f"storm track stepped {max_step} links in one day"

    memo = YearlyWeatherEvaluator(
        topology, catalog, registry, delta_k=0, cache_mb=CACHE_MB
    )
    delta = YearlyWeatherEvaluator(
        topology,
        catalog,
        registry,
        delta_k=DELTA_K,
        restore_k=RESTORE_K,
        cache_mb=CACHE_MB,
    )

    t_memo = t_delta = 0.0
    max_err = 0.0
    for failed in sets:
        t0 = time.perf_counter()
        want = memo.stretches_for(failed)
        t_memo += time.perf_counter() - t0
        t0 = time.perf_counter()
        got = delta.stretches_for(failed)
        t_delta += time.perf_counter() - t0
        err = float(
            np.max(np.abs(got - want) / np.maximum(np.abs(want), 1e-300))
        )
        max_err = max(max_err, err)
    speedup = t_memo / t_delta if t_delta > 0 else float("inf")

    memo_stats = memo.solver_stats()
    delta_stats = delta.solver_stats()
    del memo, delta
    gc.collect()

    lines = [
        f"workload                 {N_SITES} sites, {N_DAYS} daily sets, "
        f"{distinct} distinct, {corridor_links}-link corridor "
        f"(topology build: {t_build:.2f} s)",
        f"memo-only evaluator      {t_memo:8.3f} s  "
        f"(delta_k=0: one full solve per distinct set, "
        f"{memo_stats['full_solves']} full solves)",
        f"delta evaluator          {t_delta:8.3f} s  "
        f"(delta_k={DELTA_K}, restore_k={RESTORE_K}: "
        f"{delta_stats['full_solves']} full / "
        f"{delta_stats['delta_solves']} delta / "
        f"{delta_stats['memo_hits']} memo, "
        f"{delta_stats['union_solves']} union promotions)",
        f"speedup                  {speedup:8.1f} x  (gate: >= {MIN_SPEEDUP:.0f}x)",
        f"stretch parity           {max_err:.2e}  (gate: <= {RTOL:.0e})",
        f"delta cache              {delta_stats['cached_sets']} sets, "
        f"{delta_stats['cache_bytes'] / 2**20:.0f} MiB held, "
        f"{delta_stats['evictions']} evictions",
    ]
    report("storm_track", lines)

    assert max_err <= RTOL, (
        f"delta-route stretch parity {max_err:.2e} exceeds {RTOL:.0e}"
    )
    assert memo_stats["full_solves"] == distinct, (
        f"memo-only baseline solved {memo_stats['full_solves']} != "
        f"{distinct} distinct sets — baseline is not PR 5 behavior"
    )
    max_fulls = corridor_links + FULL_SOLVE_SLACK
    assert delta_stats["full_solves"] <= max_fulls, (
        f"delta route paid {delta_stats['full_solves']} full solves "
        f"(> {max_fulls}); the storm track should cost about one per "
        f"corridor link"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"storm-track speedup {speedup:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x gate"
    )

    write_bench_json(
        "weather",
        {
            "storm_sites": N_SITES,
            "storm_days": N_DAYS,
            "storm_distinct_sets": distinct,
            "storm_corridor_links": corridor_links,
            "storm_memo_s": round(t_memo, 4),
            "storm_delta_s": round(t_delta, 4),
            "storm_speedup": round(speedup, 2),
            "storm_parity": float(f"{max_err:.3e}"),
            "storm_full_solves": delta_stats["full_solves"],
            "storm_delta_solves": delta_stats["delta_solves"],
            "storm_memo_hits": delta_stats["memo_hits"],
            "storm_union_solves": delta_stats["union_solves"],
        },
    )
    print("storm-track gate: PASS")


if __name__ == "__main__":
    main()
