"""E13 — Fig 11: robustness to traffic-mix deviations.

A cISP designed for a 4:3:3 city-city : city-DC : DC-DC mix is offered
5:3:3, 4:4:3, and 4:3:4 mixes instead: mean delay moves by well under a
millisecond and loss stays ~0 up to ~70% of design load.
"""

from repro.core import solve_heuristic
from repro.netsim import run_udp_experiment
from repro.scenarios import city_dc_scenario, city_dc_traffic, dc_dc_traffic
from repro.traffic import mixed_matrix, population_product_matrix

from _support import report

DESIGN_GBPS = 100.0
LOADS = [0.3, 0.5, 0.7, 0.9]
MIXES = {
    "4:3:3 (design)": (4.0, 3.0, 3.0),
    "5:3:3": (5.0, 3.0, 3.0),
    "4:4:3": (4.0, 4.0, 3.0),
    "4:3:4": (4.0, 3.0, 4.0),
}


def bench_fig11_traffic_mix(benchmark):
    scenario = city_dc_scenario()
    sites = list(scenario.sites)
    cc = population_product_matrix(sites)
    cdc = city_dc_traffic(scenario)
    dcdc = dc_dc_traffic(scenario)

    design_mix = mixed_matrix([(cc, 4.0), (cdc, 3.0), (dcdc, 3.0)])
    design = scenario.design_input(design_mix)
    topology = solve_heuristic(design, 3000.0, ilp_refinement=False).topology

    rows = ["mix             load%  mean_delay_ms  loss_rate"]
    deltas = []
    baseline_delay = {}
    for label, (w_cc, w_cdc, w_dc) in MIXES.items():
        offered = mixed_matrix([(cc, w_cc), (cdc, w_cdc), (dcdc, w_dc)])
        for load in LOADS:
            res = run_udp_experiment(
                topology,
                DESIGN_GBPS,
                load,
                offered_traffic=offered,
                duration_s=0.4,
                rate_scale=3e-3,
                capacity_mode="tight",
                seed=5,
            )
            rows.append(
                f"{label:15s} {load * 100:4.0f}  {res.mean_delay_ms:13.3f}  {res.loss_rate:.4f}"
            )
            if label == "4:3:3 (design)":
                baseline_delay[load] = res.mean_delay_ms
            elif load <= 0.7:
                deltas.append(abs(res.mean_delay_ms - baseline_delay[load]))
    rows.append(
        f"max |delay shift| vs design mix at <=70% load: {max(deltas):.3f} ms"
        " (paper: <0.05 ms)"
    )
    report("fig11_traffic_mix", rows)

    benchmark.pedantic(
        lambda: run_udp_experiment(
            topology, DESIGN_GBPS, 0.5, duration_s=0.2, rate_scale=1e-3
        ),
        rounds=1,
        iterations=1,
    )
