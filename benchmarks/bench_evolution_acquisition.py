"""Extension benches: budget evolution [20], acquisition refinement [19],
and graded weather degradation (§6.1's suggested refinement).

These regenerate the paper's two online artifacts as tables — the
animation of the hybrid evolving from mostly-fiber to mostly-MW with
budget, and the §6.5 probabilistic path-refinement video — plus the
binary-vs-graded failure comparison the paper predicts "can only
improve" the weather numbers.
"""

import numpy as np

from repro.core import budget_evolution, solve_heuristic
from repro.towers.acquisition import (
    AcquisitionModel,
    acquisition_study,
    refine_with_confirmations,
)
from repro.weather import graded_yearly_comparison

from _support import (
    full_us_design_input,
    full_us_scenario,
    report,
    us_greedy_steps,
    us_topology_3000,
)


def bench_evolution_with_budget(benchmark):
    """The animation [20] as a table: fiber -> MW composition."""
    design = full_us_design_input()
    steps = list(us_greedy_steps(max_budget=9000.0))
    budgets = [0, 250, 500, 1000, 2000, 3000, 5000, 8000]
    points = budget_evolution(design, steps, [float(b) for b in budgets])
    rows = ["budget  links  stretch  traffic_touching_mw  route_km_on_mw"]
    for p in points:
        rows.append(
            f"{p.budget_towers:6.0f}  {p.n_links:5d}  {p.mean_stretch:.4f}"
            f"  {p.traffic_on_mw:19.1%}  {p.distance_share_mw:14.1%}"
        )
    rows.append(
        "shape: the network evolves from mostly-fiber to mostly-MW as the "
        "budget grows (paper animation [20])"
    )
    shares = [p.distance_share_mw for p in points]
    assert shares == sorted(shares)
    report("evolution_budget", rows)
    benchmark.pedantic(
        lambda: budget_evolution(design, steps, [3000.0]), rounds=1, iterations=1
    )


def bench_acquisition_refinement(benchmark):
    """§6.5's probabilistic tower-acquisition workflow (video [19])."""
    scenario = full_us_scenario()
    names = [s.name for s in scenario.sites]
    a, b = names.index("Chicago"), names.index("Kansas City")
    site_a, site_b = scenario.sites[a], scenario.sites[b]
    model = AcquisitionModel(rental_acquire_prob=0.75, fcc_acquire_prob=0.5)
    study = acquisition_study(
        site_a, site_b, scenario.registry, scenario.hop_graph,
        model=model, n_draws=150, seed=3,
    )
    refined, confirmed = refine_with_confirmations(
        study, site_a, site_b, scenario.registry, scenario.hop_graph,
        model=model, n_draws=150,
    )
    rows = [
        f"pair: {site_a.name} <-> {site_b.name}",
        "stage       feasible%  stretch_p50  stretch_p90",
        f"initial     {study.feasible_fraction:9.1%}  {study.stretch_percentile(50):11.4f}"
        f"  {study.stretch_percentile(90):11.4f}",
        f"refined     {refined.feasible_fraction:9.1%}  {refined.stretch_percentile(50):11.4f}"
        f"  {refined.stretch_percentile(90):11.4f}",
        f"towers confirmed: {len(confirmed)}",
        "shape: confirming the most-used towers narrows the stretch spread "
        "and keeps the route buildable (paper video [19])",
    ]
    report("acquisition_refinement", rows)
    benchmark.pedantic(
        lambda: acquisition_study(
            site_a, site_b, scenario.registry, scenario.hop_graph,
            model=model, n_draws=20, seed=9,
        ),
        rounds=1,
        iterations=1,
    )


def bench_graded_degradation(benchmark):
    """Binary vs graded failures: latency improves, bandwidth pays."""
    scenario = full_us_scenario()
    topology = us_topology_3000()
    cmp = graded_yearly_comparison(
        topology, scenario.catalog, scenario.registry, n_intervals=120, seed=7
    )
    rows = [
        "model    p99_median  worst_median",
        f"binary   {np.median(cmp.binary_p99):10.4f}  {np.median(cmp.binary_worst):12.4f}",
        f"graded   {np.median(cmp.graded_p99):10.4f}  {np.median(cmp.graded_worst):12.4f}",
        f"mean MW capacity lost to modulation downshifts: "
        f"{cmp.capacity_loss_fraction:.2%}",
        "shape: graded operation strictly improves latency statistics "
        "(the paper: 'can only improve these numbers')",
    ]
    report("graded_degradation", rows)
    benchmark.pedantic(
        lambda: graded_yearly_comparison(
            topology, scenario.catalog, scenario.registry, n_intervals=10, seed=2
        ),
        rounds=1,
        iterations=1,
    )
