"""E6 — Fig 4(c): cost per GB vs aggregate throughput (city-city model).

The curve falls steeply and flattens under $1/GB by a few hundred Gbps
(the paper quotes $0.81/GB at 100 Gbps); fixed rental/equipment costs
amortize over more carried traffic faster than augmentation adds new
towers (the k^2 bandwidth trick needs only sqrt-many series).
"""

from repro.core import augment_capacity

from _support import full_us_scenario, report, us_topology_3000

THROUGHPUTS_GBPS = [1, 10, 50, 100, 200, 500, 1000]


def bench_fig4c_cost_vs_throughput(benchmark):
    scenario = full_us_scenario()
    topology = us_topology_3000()
    rows = ["aggregate_gbps  cost_per_gb  new_towers  hop_series"]
    costs = []
    for gbps in THROUGHPUTS_GBPS:
        aug = augment_capacity(
            topology, scenario.catalog, scenario.registry, float(gbps)
        )
        cost = aug.cost_per_gb()
        costs.append(cost)
        rows.append(
            f"{gbps:14d}  ${cost:9.3f}  {aug.n_new_towers:10d}  {aug.n_hop_series:10d}"
        )
    rows.append(f"shape: monotone decreasing = {all(a >= b for a, b in zip(costs, costs[1:]))}")
    rows.append(f"cost at 100 Gbps: ${costs[THROUGHPUTS_GBPS.index(100)]:.2f} (paper: $0.81)")
    report("fig4c_cost_throughput", rows)

    benchmark.pedantic(
        lambda: augment_capacity(
            topology, scenario.catalog, scenario.registry, 100.0
        ),
        rounds=1,
        iterations=1,
    )
