"""E17 — §2: the HFT Chicago-New Jersey relay loss statistics.

The paper's 2,743-minute trace (spanning Hurricane Sandy) shows mean
loss 16.1% but median 1.4% — i.e., microwave loss is overwhelmingly a
rare-event phenomenon.  Reproduced on the synthetic trace.
"""

from repro.weather import synthesize_hft_trace

from _support import report


def bench_sec2_loss_trace(benchmark):
    trace = synthesize_hft_trace()
    rows = [
        "metric             paper    measured",
        f"minutes            2743     {len(trace.loss_rates)}",
        f"mean loss          16.1%    {trace.mean * 100:.1f}%",
        f"median loss        1.4%     {trace.median * 100:.2f}%",
        f"minutes >10% loss  -        {trace.fraction_above(0.10) * 100:.1f}%",
        "shape: mean >> median (loss concentrates in the hurricane days)",
    ]
    report("sec2_loss_trace", rows)

    benchmark.pedantic(lambda: synthesize_hft_trace(), rounds=5, iterations=1)
