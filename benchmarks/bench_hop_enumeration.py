"""Hop-enumeration speedup: spatial-indexed pipeline vs brute force.

The candidate-hop pipeline prunes tower pairs beyond radio range with a
grid spatial index before any terrain work and memoizes terrain
profiles.  This benchmark times it against the brute-force pairwise
path (every one of the n(n-1)/2 pairs pushed through the batch LoS
checker) on a 500-tower continental field, verifies the two paths find
*identical* hop sets, and reports the speedup — plus the warm-cache
speedup of a re-enumeration over the same field.
"""

import time

import numpy as np

from repro.core.pipeline import HopPipeline
from repro.geo.terrain import us_terrain
from repro.towers.los import LosChecker, LosConfig
from repro.towers.registry import Tower, TowerRegistry

from _support import report

N_TOWERS = 500

#: Minimum pipeline speedup over brute force (acceptance threshold).
MIN_SPEEDUP = 5.0


def _continental_registry(n: int = N_TOWERS, seed: int = 1234) -> TowerRegistry:
    """A random US-scale tower field (paper-like densities)."""
    rng = np.random.default_rng(seed)
    towers = [
        Tower(
            tower_id=i,
            lat=float(rng.uniform(30.0, 48.0)),
            lon=float(rng.uniform(-120.0, -75.0)),
            height_m=float(rng.uniform(60.0, 180.0)),
            source="fcc",
        )
        for i in range(n)
    ]
    return TowerRegistry(towers)


def _brute_force_hops(
    registry: TowerRegistry, checker: LosChecker, batch_size: int = 4096
) -> set[tuple[int, int]]:
    """Every O(n^2) pair through the batch checker — no spatial pruning."""
    towers = registry.towers
    n = len(towers)
    a, b = np.triu_indices(n, k=1)
    hops: set[tuple[int, int]] = set()
    for start in range(0, len(a), batch_size):
        sl = slice(start, start + batch_size)
        batch_a = [towers[i] for i in a[sl]]
        batch_b = [towers[i] for i in b[sl]]
        ok = checker.batch_feasible(batch_a, batch_b)
        for i, j in zip(a[sl][ok], b[sl][ok]):
            hops.add((int(i), int(j)))
    return hops


def run_comparison(n_towers: int = N_TOWERS) -> dict:
    registry = _continental_registry(n_towers)
    terrain = us_terrain()
    config = LosConfig()

    t0 = time.perf_counter()
    brute_hops = _brute_force_hops(registry, LosChecker(terrain, config))
    brute_s = time.perf_counter() - t0

    pipeline = HopPipeline.from_terrain(terrain, config)
    t0 = time.perf_counter()
    graph = pipeline.enumerate_hops(registry)
    cold_s = time.perf_counter() - t0
    pipeline_hops = {
        (int(i), int(j)) for i, j in zip(graph.edges_a, graph.edges_b)
    }

    t0 = time.perf_counter()
    graph2 = pipeline.enumerate_hops(registry)
    warm_s = time.perf_counter() - t0
    warm_hops = {
        (int(i), int(j)) for i, j in zip(graph2.edges_a, graph2.edges_b)
    }

    assert pipeline_hops == brute_hops, (
        f"hop sets differ: pipeline {len(pipeline_hops)} vs "
        f"brute force {len(brute_hops)}"
    )
    assert warm_hops == pipeline_hops, "warm re-enumeration changed the hop set"

    stats = pipeline.stats
    return {
        "n_towers": n_towers,
        "all_pairs": n_towers * (n_towers - 1) // 2,
        "candidate_pairs": stats.candidate_pairs,
        "feasible_hops": len(pipeline_hops),
        "brute_s": brute_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup_cold": brute_s / cold_s if cold_s > 0 else float("inf"),
        "speedup_warm": brute_s / warm_s if warm_s > 0 else float("inf"),
        "cache": pipeline.checker.cache_stats(),
    }


def bench_hop_enumeration(benchmark=None):
    r = run_comparison()
    rows = [
        "path                 pairs_checked  feasible  runtime_s  speedup",
        f"brute force          {r['all_pairs']:13d}  {r['feasible_hops']:8d}  "
        f"{r['brute_s']:9.3f}  {1.0:7.1f}x",
        f"pipeline (cold)      {r['candidate_pairs']:13d}  {r['feasible_hops']:8d}  "
        f"{r['cold_s']:9.3f}  {r['speedup_cold']:7.1f}x",
        f"pipeline (warm)      {r['candidate_pairs']:13d}  {r['feasible_hops']:8d}  "
        f"{r['warm_s']:9.3f}  {r['speedup_warm']:7.1f}x",
        f"hop sets identical across all three paths "
        f"({r['feasible_hops']} hops over {r['n_towers']} towers)",
        f"spatial pruning discarded "
        f"{1.0 - r['candidate_pairs'] / r['all_pairs']:.1%} of pairs "
        f"before terrain work",
        f"terrain profile cache: {r['cache']['profile_hits']} hits / "
        f"{r['cache']['profile_misses']} misses",
    ]
    assert r["speedup_cold"] >= MIN_SPEEDUP, (
        f"pipeline speedup {r['speedup_cold']:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x acceptance bar"
    )
    report("hop_enumeration", rows)
    if benchmark is not None:
        registry = _continental_registry()
        pipeline = HopPipeline.from_terrain(us_terrain(), LosConfig())
        benchmark.pedantic(
            lambda: pipeline.enumerate_hops(registry), rounds=1, iterations=1
        )


if __name__ == "__main__":
    bench_hop_enumeration()
