"""A2/A4 ablations: greedy candidate inflation and routing schemes.

A2: the heuristic generates ILP candidates with a 2x-inflated budget;
smaller inflation risks missing links the exact optimum uses, larger
inflation only grows the ILP.  We sweep the factor and compare against
the exact ILP.

A4 (§5): the alternative routing schemes (min-max utilization and
throughput-optimal) trade ~10% extra latency for load balance on the
designed topology.
"""

import networkx as nx

from repro.core import solve_heuristic, solve_ilp
from repro.netsim import (
    mean_route_latency,
    min_max_utilization_routing,
    shortest_path_routing,
    throughput_optimal_routing,
)
from repro.scenarios import us_scenario

from _support import report, us_topology_3000

INFLATIONS = [1.0, 1.5, 2.0, 3.0]
N_SITES = 10
BUDGET = 500.0


def bench_ablation_greedy_inflation(benchmark):
    design = us_scenario(n_sites=N_SITES).design_input()
    exact = solve_ilp(design, BUDGET, time_limit_s=600)
    rows = [
        f"exact ILP stretch: {exact.objective:.4f}",
        "inflation  heuristic_stretch  gap",
    ]
    for inflation in INFLATIONS:
        res = solve_heuristic(design, BUDGET, inflation=inflation)
        gap = res.objective - exact.objective
        rows.append(f"{inflation:9.1f}  {res.objective:.4f}            {gap:+.4f}")
    rows.append("shape: gap closes by 2x inflation (the paper's choice)")
    report("ablation_greedy_inflation", rows)

    benchmark.pedantic(
        lambda: solve_heuristic(design, BUDGET, inflation=2.0),
        rounds=1,
        iterations=1,
    )


def bench_ablation_routing_schemes(benchmark):
    """A4: latency premium of load-balancing routing on the US design."""
    topology = us_topology_3000()
    design = topology.design

    graph = nx.Graph()
    for a, b in topology.mw_links:
        graph.add_edge(a, b, latency=design.mw_km[a, b], capacity=4.0)
    # Demands between MW-connected sites only (fiber is unconstrained in
    # the paper's model, so load balancing concerns MW links).
    demands = {}
    h = design.traffic
    nodes = set(graph.nodes)
    pairs = sorted(
        ((s, t) for s in nodes for t in nodes if s < t and h[s, t] > 0),
        key=lambda p: -h[p],
    )[:60]
    for s, t in pairs:
        if nx.has_path(graph, s, t):
            demands[(s, t)] = float(h[s, t] * 1e4)
    sp = shortest_path_routing(graph, demands)
    mm = min_max_utilization_routing(graph, demands, k=3)
    to = throughput_optimal_routing(graph, demands, k=3)
    lat_sp = mean_route_latency(graph, sp, demands)
    rows = ["scheme              mean_latency_km  premium_vs_shortest"]
    for name, routing in (("shortest-path", sp), ("min-max-util", mm), ("throughput-opt", to)):
        lat = mean_route_latency(graph, routing, demands)
        rows.append(f"{name:18s}  {lat:15.1f}  {(lat / lat_sp - 1) * 100:+.1f}%")
    rows.append("paper: alternative schemes incur ~10% higher latency")
    report("ablation_routing_schemes", rows)

    benchmark.pedantic(
        lambda: min_max_utilization_routing(graph, demands, k=2),
        rounds=1,
        iterations=1,
    )
