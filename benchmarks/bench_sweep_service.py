"""Sweep-service gate: fault tolerance must be (nearly) free and exact.

The fault-tolerant :class:`repro.exp.SweepService` wraps every sweep
point in a durable journal (checkpoint, retry, watchdog, resume).  That
machinery is only acceptable if it neither slows the common case nor
perturbs results.  Gates, on a 100-point (10 budgets x 10 loads) us-12
sweep running the netsim + apps + econ pipeline per point:

1. **resume exactness** — a run interrupted after 60 points and then
   resumed must produce records byte-identical to an uninterrupted
   sweep, execute exactly the 40 missing points, re-execute zero
   substrate stages, and compute only the designs the interrupted run
   never reached (nothing already cached may recompute);
2. **overhead** — the service (``jobs=1``, journaling every point) must
   stay within 10% of the plain :class:`SweepRunner` on the warm-cache
   sweep (median CPU-time ratio over 9 order-alternated rounds of
   5-run batches — see :func:`time_paired`);
3. **chaos** — with deterministic seeded worker kills (``jobs=2``), the
   sweep must still complete byte-identical, recovering via >= 1 pool
   respawn and zero quarantined points;
4. **corrupt artifact** — a corrupted on-disk design artifact must be
   quarantined as a cache miss and recomputed, leaving the records
   byte-identical.

Each run appends to the ``BENCH_sweep_runner.json`` perf trajectory
(tagged ``bench: sweep_service``).
"""

import os
import statistics
import tempfile
import time

from repro.exp import (
    AppsSpec,
    ArtifactStore,
    DesignSpec,
    EconSpec,
    ExperimentSpec,
    FaultPlan,
    NetsimSpec,
    RetryPolicy,
    ScenarioSpec,
    SweepRunner,
    SweepService,
    corrupt_artifact,
    stage_key,
)

from _support import report, write_bench_json

#: Acceptance thresholds (see module docstring).
MAX_OVERHEAD = 0.10
INTERRUPT_AFTER = 60

N_SITES = 12
AGGREGATE_GBPS = 100.0
BUDGETS = tuple(200.0 + 150.0 * i for i in range(10))
LOADS = tuple(round(0.05 + 0.09 * i, 2) for i in range(10))
ENGINE = "fluid"

AXES = {
    "design.budget_towers": list(BUDGETS),
    "netsim.loads": [(load,) for load in LOADS],
}

RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01)


def base_spec() -> ExperimentSpec:
    return ExperimentSpec(
        scenario=ScenarioSpec(name="us", sites=N_SITES, seed=42),
        design=DesignSpec(
            budget_towers=BUDGETS[0],
            solver="heuristic",
            aggregate_gbps=AGGREGATE_GBPS,
            solver_opts={"ilp_refinement": False},
        ),
        netsim=NetsimSpec(loads=(LOADS[0],), engine=ENGINE, seed=0),
        apps=AppsSpec(),
        econ=EconSpec(),
    )


def time_paired(
    rounds: int, batch: int, base_fn, variant_fn
) -> tuple[float, float, float]:
    """Compare two workloads robustly on a noisy shared machine.

    Each round times ``batch`` back-to-back runs of each side (one CPU
    clock reading per batch) and records the variant/base CPU ratio;
    rounds alternate which side goes first.  Batching makes every
    sample long relative to host-level CPU-speed oscillations (steal,
    frequency and quota cycling can swing a single ~40 ms run by 2-3x),
    alternation stops periodic background load from phase-locking onto
    one side, and the median ratio discards the rounds a spike still
    lands in.  Returns ``(wall_base, wall_variant, median_ratio)``
    where the walls are the best per-run averages seen in any batch.
    """
    wall_base = wall_variant = float("inf")
    ratios = []
    for i in range(rounds):
        sides = {}
        order = ("base", "variant") if i % 2 == 0 else ("variant", "base")
        for side in order:
            fn = base_fn if side == "base" else variant_fn
            w0, c0 = time.perf_counter(), time.process_time()
            for _ in range(batch):
                fn()
            sides[side] = time.process_time() - c0
            wall = (time.perf_counter() - w0) / batch
            if side == "base":
                wall_base = min(wall_base, wall)
            else:
                wall_variant = min(wall_variant, wall)
        ratios.append(sides["variant"] / sides["base"])
    return wall_base, wall_variant, statistics.median(ratios)


def bench_sweep_service(benchmark=None):
    spec = base_spec()
    n_points = len(BUDGETS) * len(LOADS)

    store_root = os.environ.get("REPRO_ARTIFACT_DIR")
    tmp = None
    if store_root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-svc-")
        store_root = tmp.name

    rows = [
        "sweep-service fault-tolerance gate (100-point budget x load sweep)",
        f"workload: us-{N_SITES}, {len(BUDGETS)} budgets x {len(LOADS)} "
        f"loads = {n_points} points, engine={ENGINE}",
    ]
    try:
        # -- gate 1: interrupt cold at 60 points, resume the missing 40.
        store = ArtifactStore(store_root)
        service = SweepService(
            spec, AXES, store=store, jobs=1, retry=RETRY
        )

        executed = []

        def stop_at_limit(index, _rows):
            executed.append(index)
            if len(executed) == INTERRUPT_AFTER:
                service.request_stop()

        t0 = time.perf_counter()
        interrupted = service.run(on_point=stop_at_limit)
        t_interrupted = time.perf_counter() - t0
        assert interrupted.interrupted, "stop request did not interrupt"
        assert interrupted.executed_points == INTERRUPT_AFTER

        resumed_service = SweepService(
            spec, AXES, store=ArtifactStore(store_root), jobs=1,
            retry=RETRY, resume=True,
        )
        t0 = time.perf_counter()
        resumed = resumed_service.run()
        t_resumed = time.perf_counter() - t0

        reference = SweepRunner(
            spec, AXES, store=ArtifactStore(store_root), jobs=1
        ).run()
        resume_exact = resumed.records_json() == reference.records_json()
        missing = n_points - INTERRUPT_AFTER
        rows += [
            f"interrupted cold run ({INTERRUPT_AFTER} pts) "
            f"{t_interrupted:8.3f} s",
            f"resume ({missing} missing pts)       {t_resumed:8.3f} s",
            f"resume records byte-identical: {resume_exact}",
            f"resume executed/resumed points: {resumed.executed_points}/"
            f"{resumed.resumed_points}",
            f"resume session substrate/design executions: "
            f"{resumed.session_executed('substrate')}/"
            f"{resumed.session_executed('design')}",
        ]
        assert resume_exact, "resumed records differ from uninterrupted run"
        assert resumed.executed_points == missing, (
            f"resume executed {resumed.executed_points} points, "
            f"expected exactly the {missing} missing"
        )
        assert resumed.resumed_points == INTERRUPT_AFTER
        assert resumed.session_executed("substrate") == 0, (
            "resume re-executed the substrate stage"
        )
        # Points run budget-major, so interrupting at a multiple of
        # len(LOADS) leaves exactly the tail budgets' designs uncomputed;
        # the resume must compute those and nothing more.
        fresh_designs = len(BUDGETS) - INTERRUPT_AFTER // len(LOADS)
        assert resumed.session_executed("design") == fresh_designs, (
            f"resume executed {resumed.session_executed('design')} design "
            f"stages, expected the {fresh_designs} never reached before "
            f"the interrupt"
        )

        # -- gate 2: warm-cache overhead vs the plain SweepRunner.
        t_runner, t_service, ratio = time_paired(
            9,
            5,
            lambda: SweepRunner(
                spec, AXES, store=ArtifactStore(store_root), jobs=1
            ).run(),
            lambda: SweepService(
                spec, AXES, store=ArtifactStore(store_root), jobs=1,
                retry=RETRY,
            ).run(),
        )
        overhead = ratio - 1.0
        rows += [
            f"warm SweepRunner (best batch avg)  {t_runner:8.3f} s",
            f"warm SweepService (best batch avg) {t_service:8.3f} s",
            f"service overhead              {overhead:8.1%}  "
            f"(gate: <= {MAX_OVERHEAD:.0%})",
        ]
        warm_service = SweepService(
            spec, AXES, store=ArtifactStore(store_root), jobs=1, retry=RETRY
        ).run()
        warm_exact = warm_service.records_json() == reference.records_json()
        rows.append(f"warm service records byte-identical: {warm_exact}")
        assert warm_exact, "service records differ from SweepRunner"
        assert overhead <= MAX_OVERHEAD, (
            f"service overhead {overhead:.1%} exceeds the "
            f"{MAX_OVERHEAD:.0%} acceptance bar"
        )

        # -- gate 3: seeded worker kills, jobs=2, warm store.
        plan = FaultPlan.seeded_kills(n_points, seed=0, rate=0.03)
        t0 = time.perf_counter()
        chaos_service = SweepService(
            spec, AXES, store=ArtifactStore(store_root), jobs=2,
            retry=RETRY, fault_plan=plan, poll_interval_s=0.05,
        )
        chaos = chaos_service.run()
        t_chaos = time.perf_counter() - t0
        chaos_exact = chaos.records_json() == reference.records_json()
        rows += [
            f"chaos (jobs=2, {len(plan.faults)} seeded kills) "
            f"{t_chaos:8.3f} s",
            f"chaos pool restarts: {chaos.pool_restarts}  "
            f"quarantined: {len(chaos.failures)}",
            f"chaos records byte-identical: {chaos_exact}",
        ]
        assert chaos_exact, "chaos-run records differ"
        assert chaos.pool_restarts >= 1, "kills never broke the pool?"
        assert not chaos.failures, "seeded kills should retry to success"

        # -- gate 4: corrupt artifact quarantined and recomputed.
        design_spec = spec.with_value(
            "design.budget_towers", BUDGETS[3]
        )
        key = stage_key(design_spec, "design")
        corrupt_artifact(ArtifactStore(store_root), key, mode="garbage")
        recompute = SweepRunner(
            spec, AXES, store=ArtifactStore(store_root), jobs=1
        ).run()
        corrupt_exact = recompute.records_json() == reference.records_json()
        recomputed_designs = recompute.executed("design")
        rows += [
            f"corrupt-design recompute: {recomputed_designs} design "
            f"execution(s), records byte-identical: {corrupt_exact}",
        ]
        assert corrupt_exact, "records differ after corrupt-artifact recovery"
        assert recomputed_designs == 1, (
            f"expected exactly 1 design recompute, got {recomputed_designs}"
        )

        report("sweep_service", rows)
        write_bench_json(
            "sweep_runner",
            {
                "bench": "sweep_service",
                "workload": {
                    "n_sites": N_SITES,
                    "points": n_points,
                    "engine": ENGINE,
                },
                "interrupted_cold_s": round(t_interrupted, 4),
                "resume_s": round(t_resumed, 4),
                "warm_runner_s": round(t_runner, 4),
                "warm_service_s": round(t_service, 4),
                "service_overhead": round(overhead, 4),
                "chaos_s": round(t_chaos, 4),
                "chaos_pool_restarts": chaos.pool_restarts,
                "resume_exact": resume_exact,
                "chaos_exact": chaos_exact,
            },
        )
    finally:
        if tmp is not None:
            tmp.cleanup()

    if benchmark is not None:
        benchmark.pedantic(
            lambda: SweepService(
                spec, AXES, store=ArtifactStore(store_root), jobs=1,
                retry=RETRY,
            ).run(),
            rounds=1,
            iterations=1,
        )


if __name__ == "__main__":
    bench_sweep_service()
