"""Weather-loop gate: vectorized + memoized yearly analysis >= 5x, same bits.

Before the shared :class:`repro.weather.YearlyWeatherEvaluator`, every
sampled interval of the §6.1 yearly analysis paid (a) one scalar
``path_attenuation_db`` call *per hop* (the ITU-R coefficient
interpolation re-run every time), and (b) one full all-pairs re-solve
per interval with failures; the graded comparison additionally rebuilt
the whole storm field once per link per day.  The evaluator inverts the
attenuation once per hop into critical rain rates (failure detection
becomes one vectorized comparison), builds each day's storm field once
for all hops, and memoizes the all-pairs solve per *distinct*
failed-link set through ``GraphView.distances_with_edges_removed``.

The baselines below embed the pre-evaluator code verbatim so the
comparison stays honest as the library evolves.  The evaluators are
pinned to ``delta_k=0`` (the memo-only route), whose matrices are
bit-identical to the baseline's; the delta-reuse route added on top is
gated separately — to <= 1e-9 and >= 10x on a storm-track workload — by
``bench_storm_track.py``.  Gates:

1. the evaluator path must be >= 5x faster than the per-interval
   re-solve baseline on a 120-interval yearly analysis;
2. every ``YearlyStretchResult`` array must be **bit-identical** to the
   baseline's (best / p99 / worst / fiber / links-failed-per-interval);
3. the graded comparison's stretch arrays must be bit-identical too
   (same failure decisions), with the capacity-loss fraction matching
   to float tolerance (its mean is now computed vectorized).

Each run appends to the ``BENCH_weather.json`` perf trajectory.
"""

import time

import numpy as np

from repro.core import solve_heuristic
from repro.scenarios import us_scenario
from repro.weather import (
    PrecipitationYear,
    YearlyWeatherEvaluator,
    graded_capacity_fraction,
    graded_yearly_comparison,
    link_hop_segments,
    path_attenuation_db,
    yearly_stretch_analysis,
)
from repro.weather.failures import distances_with_failures, failed_links

from _support import report, write_bench_json

#: Acceptance threshold (see module docstring).
MIN_SPEEDUP = 5.0

#: Workload: a mid-size US design, the paper's 120-interval sampled year.
N_SITES = 40
BUDGET_TOWERS = 1500.0
N_INTERVALS = 120
SEED = 7

#: Tolerance for the (vectorized-mean) capacity-loss parity check.
RTOL = 1e-12


# --------------------------------------------------------------------------
# The embedded pre-evaluator baselines (verbatim seed semantics).
# --------------------------------------------------------------------------


def seed_yearly_stretch_analysis(
    topology, catalog, registry, precipitation, n_intervals, fade_margin_db, seed
):
    """The pre-evaluator binary loop: one full re-solve per interval."""
    rng = np.random.default_rng(seed)
    days = rng.choice(np.arange(1, 366), size=n_intervals, replace=n_intervals > 365)
    design = topology.design
    geo = design.geodesic_km
    iu = np.triu_indices(design.n_sites, k=1)
    valid = geo[iu] > 0

    def stretches(dist):
        return (dist[iu] / geo[iu])[valid]

    best = stretches(topology.effective_distance_matrix())
    fiber = stretches(design.fiber_km)
    segments = link_hop_segments(topology, catalog, registry)

    per_interval = np.empty((n_intervals, valid.sum()))
    n_failed = np.zeros(n_intervals, dtype=int)
    for k, day in enumerate(days):
        failed = failed_links(
            segments, precipitation, int(day), fade_margin_db=fade_margin_db
        )
        n_failed[k] = len(failed)
        if failed:
            per_interval[k] = stretches(distances_with_failures(topology, failed))
        else:
            per_interval[k] = best
    return {
        "best": best,
        "p99": np.percentile(per_interval, 99, axis=0),
        "worst": per_interval.max(axis=0),
        "fiber": fiber,
        "links_failed_per_interval": n_failed,
    }


def seed_graded_comparison(
    topology, catalog, registry, precipitation, n_intervals, seed
):
    """The pre-evaluator graded loop: one storm field per link per day."""
    soft_margin_db, hard_margin_db = 18.0, 40.0
    rng = np.random.default_rng(seed)
    days = rng.choice(np.arange(1, 366), size=n_intervals, replace=n_intervals > 365)
    segments = link_hop_segments(topology, catalog, registry)
    design = topology.design
    geo = design.geodesic_km
    iu = np.triu_indices(design.n_sites, k=1)
    valid = geo[iu] > 0

    def stretches(dist):
        return (dist[iu] / geo[iu])[valid]

    best = stretches(topology.effective_distance_matrix())
    per_interval = np.empty((n_intervals, int(valid.sum())))
    capacity_losses = []
    for k, day in enumerate(days):
        failed = set()
        for link, hops in segments.items():
            if not hops:
                continue
            lats = np.array([h[0] for h in hops])
            lons = np.array([h[1] for h in hops])
            rain = precipitation.rain_rate_mm_h(int(day), lats, lons)
            fractions = []
            for (lat, lon, hop_km), r in zip(hops, rain):
                att = path_attenuation_db(hop_km, float(r))
                fractions.append(
                    graded_capacity_fraction(att, soft_margin_db, hard_margin_db)
                )
            link_fraction = min(fractions)
            capacity_losses.append(1.0 - link_fraction)
            if link_fraction <= 0.0:
                failed.add(link)
        if failed:
            per_interval[k] = stretches(distances_with_failures(topology, failed))
        else:
            per_interval[k] = best
    return {
        "graded_p99": np.percentile(per_interval, 99, axis=0),
        "graded_worst": per_interval.max(axis=0),
        "capacity_loss_fraction": float(np.mean(capacity_losses)),
    }


def main() -> None:
    scenario = us_scenario(n_sites=N_SITES)
    t0 = time.perf_counter()
    topology = solve_heuristic(
        scenario.design_input(), BUDGET_TOWERS, ilp_refinement=False
    ).topology
    t_design = time.perf_counter() - t0
    precipitation = PrecipitationYear()
    topology.effective_distance_matrix()  # warm the memo for both paths

    # -- binary yearly analysis ------------------------------------------
    t0 = time.perf_counter()
    base = seed_yearly_stretch_analysis(
        topology, scenario.catalog, scenario.registry, precipitation,
        N_INTERVALS, 30.0, SEED,
    )
    t_baseline = time.perf_counter() - t0

    t0 = time.perf_counter()
    # delta_k=0 pins the memo-only route: this gate's contract is
    # bit-identical arrays vs the pre-evaluator baseline.
    result = yearly_stretch_analysis(
        topology, scenario.catalog, scenario.registry,
        precipitation=precipitation, n_intervals=N_INTERVALS, seed=SEED,
        evaluator=YearlyWeatherEvaluator(
            topology, scenario.catalog, scenario.registry,
            precipitation=precipitation, delta_k=0,
        ),
    )
    t_new = time.perf_counter() - t0
    speedup = t_baseline / t_new if t_new > 0 else float("inf")

    identical = {
        name: bool(np.array_equal(base[name], getattr(result, name)))
        for name in ("best", "p99", "worst", "fiber", "links_failed_per_interval")
    }

    # -- graded comparison ------------------------------------------------
    t0 = time.perf_counter()
    graded_base = seed_graded_comparison(
        topology, scenario.catalog, scenario.registry, precipitation,
        N_INTERVALS, SEED,
    )
    t_graded_baseline = time.perf_counter() - t0

    t0 = time.perf_counter()
    graded = graded_yearly_comparison(
        topology, scenario.catalog, scenario.registry,
        precipitation=precipitation, n_intervals=N_INTERVALS, seed=SEED,
        evaluator=YearlyWeatherEvaluator(
            topology, scenario.catalog, scenario.registry,
            precipitation=precipitation, delta_k=0,
        ),
    )
    t_graded_new = time.perf_counter() - t0
    graded_speedup = (
        t_graded_baseline / t_graded_new if t_graded_new > 0 else float("inf")
    )

    graded_identical = {
        "graded_p99": bool(np.array_equal(graded_base["graded_p99"], graded.graded_p99)),
        "graded_worst": bool(
            np.array_equal(graded_base["graded_worst"], graded.graded_worst)
        ),
    }
    loss_diff = abs(
        graded_base["capacity_loss_fraction"] - graded.capacity_loss_fraction
    )

    n_failure_intervals = int((result.links_failed_per_interval > 0).sum())
    lines = [
        f"workload                 {N_SITES} sites, "
        f"{len(topology.mw_links)} MW links, {N_INTERVALS} intervals "
        f"(design solve: {t_design:.1f} s)",
        f"binary baseline          {t_baseline:8.3f} s  "
        f"(scalar attenuation per hop, one re-solve per interval)",
        f"binary evaluator         {t_new:8.3f} s  "
        f"(critical-rate comparison, failure-set memo)",
        f"binary speedup           {speedup:8.1f} x  (gate: >= {MIN_SPEEDUP:.0f}x)",
        f"graded baseline          {t_graded_baseline:8.3f} s  "
        f"(storm field per link per day)",
        f"graded evaluator         {t_graded_new:8.3f} s  "
        f"(bulk fields, shared solve cache)",
        f"graded speedup           {graded_speedup:8.1f} x",
        f"intervals with failures  {n_failure_intervals}/{N_INTERVALS}",
        f"arrays bit-identical     {identical}",
        f"graded bit-identical     {graded_identical}",
        f"capacity-loss |diff|     {loss_diff:.2e}  (gate: <= {RTOL:.0e})",
    ]
    report("weather", lines)

    for name, same in {**identical, **graded_identical}.items():
        assert same, f"{name} diverged from the pre-evaluator baseline"
    assert loss_diff <= RTOL, (
        f"capacity-loss fraction diverged: |diff| {loss_diff:.2e} > {RTOL:.0e}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"weather evaluator speedup {speedup:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x gate"
    )

    write_bench_json(
        "weather",
        {
            "sites": N_SITES,
            "mw_links": len(topology.mw_links),
            "intervals": N_INTERVALS,
            "failure_intervals": n_failure_intervals,
            "binary_baseline_s": round(t_baseline, 4),
            "binary_evaluator_s": round(t_new, 4),
            "binary_speedup": round(speedup, 2),
            "graded_baseline_s": round(t_graded_baseline, 4),
            "graded_evaluator_s": round(t_graded_new, 4),
            "graded_speedup": round(graded_speedup, 2),
        },
    )
    print("weather gate: PASS")


if __name__ == "__main__":
    main()
