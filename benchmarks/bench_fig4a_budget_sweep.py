"""E4 — Fig 4(a): mean stretch vs tower budget, 70 vs 100 km hops.

The paper's curve falls from the all-fiber ~1.9x toward ~1.05x around
3,000 towers and flattens past ~6,000.  A single greedy run yields the
whole curve (prefix property), and the 70 km-range variant tracks the
100 km curve closely — the paper's stated reason for only reporting
100 km results thereafter.
"""

from _support import report, stretch_at_budget, us_greedy_steps

BUDGETS = [0, 500, 1000, 2000, 3000, 4000, 6000, 8000]


def bench_fig4a_stretch_vs_budget(benchmark):
    steps_100 = us_greedy_steps(max_budget=9000.0, max_range_km=100.0)
    steps_70 = us_greedy_steps(max_budget=9000.0, max_range_km=70.0)
    rows = ["budget_towers  stretch_100km  stretch_70km"]
    for budget in BUDGETS:
        s100 = stretch_at_budget(steps_100, budget)
        s70 = stretch_at_budget(steps_70, budget)
        rows.append(f"{budget:13d}  {s100:.4f}        {s70:.4f}")
    rows.append("shape checks: monotone decreasing; 70 km close to 100 km")
    report("fig4a_budget_sweep", rows)

    benchmark.pedantic(
        lambda: stretch_at_budget(steps_100, 3000), rounds=3, iterations=1
    )
