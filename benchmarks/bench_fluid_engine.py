"""Fluid-engine gate: vectorized commodity-aggregate solver vs the
scalar reference, at million-flow scale.

PR-6 rewrote progressive filling as whole-array numpy/scipy work over
path commodities (flows sharing a path collapse into one sparse
incidence row; demand-limited flows freeze in bulk through one globally
demand-sorted array).  This benchmark pins three promises:

1. **Scale** — on a ~10^5-flow continental metro/core workload (240
   dual-homed metros behind a 24-core full mesh, heavy-tail demands
   quantized to 256 service tiers, pushed past saturation), the
   vectorized solver must be >= 50x the scalar reference.
2. **Exactness** — per-flow rates must match the (fixed) scalar solver
   to <= 1e-6 relative, on the big workload and on small random ones;
   the vectorization is an optimization, not a remodelling.
3. **Fidelity** — behind ``run_udp_experiment``, the fluid engine's
   mean per-flow throughput must stay within 10% of the packet engine
   on a congested US-topology workload (the bar that makes the fast
   path usable for Fig 5/11/13-class sweeps).
"""

import time

import numpy as np

from repro.core import solve_heuristic
from repro.netsim import FlowMonitor, Network, Simulator, UdpFlow
from repro.netsim.experiments import build_edge_specs, kept_flow_shares
from repro.netsim.fluid import (
    FluidFlow,
    max_min_rates,
    max_min_rates_vectorized,
    solve_fluid,
)
from repro.scenarios import us_scenario

from _support import report, write_bench_json

#: Acceptance thresholds (see module docstring).
MIN_VECTORIZED_SPEEDUP = 50.0
MAX_RATE_PARITY_REL = 1e-6
MAX_PACKET_PARITY_ERROR = 0.10

#: Metro/core aggregate workload shape.
N_CORE = 24
N_METRO = 240
N_FLOWS = 100_000
N_TIERS = 256
MEAN_DEMAND_BPS = 2e7  # overloads the 10G metro uplinks
SEED = 7

#: Packet-parity workload (mirrors bench_netsim_kernel's Fig 5 regime).
N_SITES = 15
BUDGET_TOWERS = 600.0
AGGREGATE_GBPS = 50.0
LOAD_FRACTION = 1.3
RATE_SCALE = 2e-3
DURATION_S = 1.0
CAPACITY_MODE = "tight"


def build_metro_core_workload():
    """~1e5 flows over a two-tier continental aggregate, past saturation.

    Demands are heavy-tail (Pareto 1.3) but quantized onto 256 service
    tiers — the realistic shape for commodity aggregates (users buy
    plans, not continuous rates), and the regime where the scalar
    solver's batch demand freezes keep its round count CI-runnable.
    """
    rng = np.random.default_rng(SEED)
    cores = [f"core{i}" for i in range(N_CORE)]
    capacities = {}
    for i, u in enumerate(cores):
        for v in cores[i + 1:]:
            capacities[(u, v)] = 40e9
            capacities[(v, u)] = 40e9
    homes = {}
    for m in range(N_METRO):
        metro = f"metro{m}"
        h1 = cores[m % N_CORE]
        h2 = cores[(m * 7 + 3) % N_CORE]
        if h2 == h1:
            h2 = cores[(m * 7 + 4) % N_CORE]
        homes[metro] = (h1, h2)
        for h in (h1, h2):
            capacities[(metro, h)] = 10e9
            capacities[(h, metro)] = 10e9

    raw = (rng.pareto(1.3, size=N_FLOWS) + 1.0) * MEAN_DEMAND_BPS
    tier_rates = np.quantile(raw, np.linspace(0, 1, N_TIERS + 1)[1:])
    tiers = tier_rates[
        np.searchsorted(tier_rates, raw).clip(max=N_TIERS - 1)
    ]

    metros = list(homes)
    src = rng.integers(0, N_METRO, size=N_FLOWS)
    dst = rng.integers(0, N_METRO, size=N_FLOWS)
    pick = rng.integers(0, 2, size=(N_FLOWS, 2))
    flows = []
    for i in range(N_FLOWS):
        s, d = metros[src[i]], metros[dst[i]]
        if s == d:
            d = metros[(dst[i] + 1) % N_METRO]
        hs = homes[s][pick[i, 0]]
        hd = homes[d][pick[i, 1]]
        path = (s, hs, d) if hs == hd else (s, hs, hd, d)
        flows.append(FluidFlow(i, path, float(tiers[i])))
    return capacities, flows


def small_random_workload(seed):
    rng = np.random.default_rng(seed)
    nodes = [f"n{i}" for i in range(10)]
    capacities = {}
    for i in range(10):
        capacities[(nodes[i], nodes[(i + 1) % 10])] = float(rng.uniform(1, 20))
        capacities[(nodes[(i + 1) % 10], nodes[i])] = float(rng.uniform(1, 20))
    flows = []
    for fid in range(40):
        start = int(rng.integers(0, 10))
        hops = int(rng.integers(1, 4))
        path = tuple(nodes[(start + j) % 10] for j in range(hops + 1))
        flows.append(FluidFlow(fid, path, float(rng.uniform(0.1, 10.0))))
    return capacities, flows


def worst_rel_diff(a: dict, b: dict) -> float:
    ids = list(a)
    x = np.array([a[i] for i in ids])
    y = np.array([b[i] for i in ids])
    return float(np.max(np.abs(x - y) / np.maximum(np.abs(y), 1e-9)))


def run_scale_gate(timing_rounds: int = 3):
    capacities, flows = build_metro_core_workload()
    vec_times = []
    vec_rates = None
    for _ in range(timing_rounds):
        t0 = time.perf_counter()
        vec_rates = max_min_rates_vectorized(capacities, flows)
        vec_times.append(time.perf_counter() - t0)
    vectorized_s = float(np.median(vec_times))

    t0 = time.perf_counter()
    scalar_rates = max_min_rates(capacities, flows)
    scalar_s = time.perf_counter() - t0

    offered = sum(f.offered_bps for f in flows)
    return {
        "n_links": len(capacities),
        "n_flows": len(flows),
        "n_commodities": len({f.path for f in flows}),
        "scalar_s": scalar_s,
        "vectorized_s": vectorized_s,
        "speedup": scalar_s / vectorized_s,
        "carried_fraction": sum(vec_rates.values()) / offered,
        "scale_parity_rel": worst_rel_diff(vec_rates, scalar_rates),
    }


def run_small_parity_gate(n_seeds: int = 6) -> float:
    worst = 0.0
    for seed in range(n_seeds):
        capacities, flows = small_random_workload(seed)
        vec = max_min_rates_vectorized(capacities, flows)
        sca = max_min_rates(capacities, flows)
        worst = max(worst, worst_rel_diff(vec, sca))
    return worst


def run_packet_parity_gate():
    scenario = us_scenario(n_sites=N_SITES)
    topology = solve_heuristic(
        scenario.design_input(), BUDGET_TOWERS, ilp_refinement=False
    ).topology
    specs = build_edge_specs(
        topology, AGGREGATE_GBPS, rate_scale=RATE_SCALE,
        capacity_mode=CAPACITY_MODE,
    )
    node_names = {s.a for s in specs} | {s.b for s in specs}
    kept, kept_mass = kept_flow_shares(
        topology.routed_paths(), topology.design.traffic, node_names, 2e-4
    )
    offered_bps = AGGREGATE_GBPS * 1e9 * RATE_SCALE * LOAD_FRACTION
    flows = [
        (fid, path, offered_bps * h / kept_mass)
        for fid, (_pair, path, h) in enumerate(kept)
    ]

    sim = Simulator()
    net = Network.from_edges(sim, specs)
    monitor = FlowMonitor(sim)
    for link in net.links.values():
        monitor.watch_link(link)
    for fid, path, rate in flows:
        UdpFlow(
            sim, net, monitor, fid, path, rate_bps=rate,
            seed=SEED * 100_003 + fid,
        ).start()
    sim.run(until=DURATION_S)
    packet_mean = monitor.mean_flow_throughput_bps(DURATION_S)

    fluid = solve_fluid(
        specs, [FluidFlow(fid, path, rate) for fid, path, rate in flows]
    )
    fluid_mean = fluid.mean_rate_bps
    return {
        "parity_n_flows": len(flows),
        "packet_mean_bps": packet_mean,
        "fluid_mean_bps": fluid_mean,
        "packet_parity_error": abs(fluid_mean - packet_mean) / packet_mean,
    }


def bench_fluid_engine(benchmark=None):
    scale = run_scale_gate()
    small_parity = run_small_parity_gate()
    packet = run_packet_parity_gate()

    rows = [
        f"workload: {scale['n_flows']} flows ({scale['n_commodities']} "
        f"path commodities) over {scale['n_links']} directed links, "
        f"saturated (carried {scale['carried_fraction']:.1%} of offered)",
        "solver                    runtime_s   speedup",
        f"scalar reference          {scale['scalar_s']:9.3f}  {1.0:7.1f}x",
        f"vectorized commodity      {scale['vectorized_s']:9.3f}  "
        f"{scale['speedup']:7.1f}x",
        f"rate parity vs scalar: {scale['scale_parity_rel']:.3g} rel "
        f"(scale), {small_parity:.3g} rel (small random; "
        f"bar {MAX_RATE_PARITY_REL:.0e})",
        f"fluid vs packet mean throughput: "
        f"{packet['fluid_mean_bps'] / 1e3:.1f} vs "
        f"{packet['packet_mean_bps'] / 1e3:.1f} kbps "
        f"({packet['packet_parity_error']:.2%} error, "
        f"bar {MAX_PACKET_PARITY_ERROR:.0%})",
    ]
    assert scale["speedup"] >= MIN_VECTORIZED_SPEEDUP, (
        f"vectorized solver speedup {scale['speedup']:.1f}x below the "
        f"{MIN_VECTORIZED_SPEEDUP:.0f}x acceptance bar"
    )
    assert scale["scale_parity_rel"] <= MAX_RATE_PARITY_REL, (
        f"scale-workload rate parity {scale['scale_parity_rel']:.3g} "
        f"exceeds {MAX_RATE_PARITY_REL:.0e} relative"
    )
    assert small_parity <= MAX_RATE_PARITY_REL, (
        f"small-workload rate parity {small_parity:.3g} exceeds "
        f"{MAX_RATE_PARITY_REL:.0e} relative"
    )
    assert packet["packet_parity_error"] <= MAX_PACKET_PARITY_ERROR, (
        f"fluid vs packet mean throughput off by "
        f"{packet['packet_parity_error']:.1%} (> {MAX_PACKET_PARITY_ERROR:.0%})"
    )
    report("fluid_engine", rows)
    write_bench_json(
        "netsim",
        {
            "benchmark": "fluid_engine",
            "workload": {
                "n_core": N_CORE,
                "n_metro": N_METRO,
                "n_flows": scale["n_flows"],
                "n_commodities": scale["n_commodities"],
                "n_links": scale["n_links"],
                "n_tiers": N_TIERS,
                "carried_fraction": round(scale["carried_fraction"], 4),
            },
            "scalar_s": round(scale["scalar_s"], 4),
            "vectorized_s": round(scale["vectorized_s"], 4),
            "vectorized_speedup": round(scale["speedup"], 1),
            "scale_parity_rel": scale["scale_parity_rel"],
            "small_parity_rel": small_parity,
            "packet_parity_error": round(packet["packet_parity_error"], 4),
        },
    )
    if benchmark is not None:
        capacities, flows = build_metro_core_workload()
        benchmark.pedantic(
            lambda: max_min_rates_vectorized(capacities, flows),
            rounds=1,
            iterations=1,
        )


if __name__ == "__main__":
    bench_fluid_engine()
