"""E1/E2 — Fig 2: heuristic vs exact ILP, runtime and optimality.

Fig 2(a): the exact ILP's runtime explodes with city count while the
cISP heuristic solves the full 120-city instance in minutes.
Fig 2(b): where the exact ILP can run, the heuristic matches its mean
stretch to two decimal places.

Also ablates the pruning oracle (DESIGN.md A1): the exact ILP with the
oracle disabled is strictly larger and slower.
"""

import time

import numpy as np

from repro.core import solve
from repro.scenarios import us_scenario

from _support import report

#: City counts for the exact ILP (the paper could not go past 50; our
#: HiGHS-based solver is kept to sizes that finish in CI time).
ILP_SIZES = [6, 8, 10, 12, 14, 16]

#: City counts for the heuristic.
HEURISTIC_SIZES = [10, 20, 40, 80, 120]

#: Budget per city, matching the paper's proportional scaling
#: (6,000 towers at 120 cities).
TOWERS_PER_CITY = 50.0


def bench_fig2a_runtime_scaling(benchmark):
    rows = ["n_cities  method     runtime_s   stretch"]
    ilp_times = []
    for n in ILP_SIZES:
        design = us_scenario(n_sites=n).design_input()
        res = solve(design, TOWERS_PER_CITY * n, backend="ilp", time_limit_s=600)
        ilp_times.append(res.runtime_s)
        rows.append(f"{n:8d}  ILP        {res.runtime_s:9.2f}   {res.objective:.4f}")
    heur_times = {}
    for n in HEURISTIC_SIZES:
        design = us_scenario(n_sites=n).design_input()
        t0 = time.perf_counter()
        res = solve(
            design, TOWERS_PER_CITY * n, backend="heuristic", ilp_refinement=n <= 12
        )
        heur_times[n] = time.perf_counter() - t0
        rows.append(
            f"{n:8d}  heuristic  {heur_times[n]:9.2f}   {res.objective:.4f}"
        )
    # Paper-style extrapolation of the exact ILP beyond its feasible
    # range: exponential fit on the measured sizes.
    if all(t > 0 for t in ilp_times):
        coeffs = np.polyfit(ILP_SIZES, np.log(np.maximum(ilp_times, 1e-3)), 1)
        for n in (50, 120):
            extrapolated_h = float(np.exp(np.polyval(coeffs, n))) / 3600.0
            rows.append(f"{n:8d}  ILP(extrapolated) {extrapolated_h:9.2e} hours   -")
    rows.append("shape check: heuristic solves 120 cities; exact ILP growth is superlinear")
    report("fig2a_runtime", rows)

    design = us_scenario(n_sites=20).design_input()
    benchmark.pedantic(
        lambda: solve(design, 1000.0, backend="heuristic", ilp_refinement=False),
        rounds=1,
        iterations=1,
    )


def bench_fig2b_optimality(benchmark):
    rows = ["n_cities  ilp_stretch  heuristic_stretch  match_2dp"]
    matches = []
    for n in ILP_SIZES:
        design = us_scenario(n_sites=n).design_input()
        budget = TOWERS_PER_CITY * n
        ilp = solve(design, budget, backend="ilp", time_limit_s=600)
        heur = solve(design, budget, backend="heuristic")
        match = round(ilp.objective, 2) == round(heur.objective, 2)
        matches.append(match)
        rows.append(
            f"{n:8d}  {ilp.objective:.4f}      {heur.objective:.4f}            {match}"
        )
    rows.append(f"paper claim (match to 2 decimals) holds: {all(matches)}")
    report("fig2b_optimality", rows)

    design = us_scenario(n_sites=8).design_input()
    benchmark.pedantic(
        lambda: solve(design, 400.0, backend="heuristic"), rounds=1, iterations=1
    )


def bench_fig2_ablation_pruning_oracle(benchmark):
    """A1: the exactness-preserving oracle shrinks the ILP drastically."""
    design = us_scenario(n_sites=8).design_input()
    budget = TOWERS_PER_CITY * 8
    pruned = solve(design, budget, backend="ilp", use_pruning=True).details
    full = solve(design, budget, backend="ilp", use_pruning=False, time_limit_s=600).details
    rows = [
        "variant     variables  constraints  runtime_s  stretch",
        f"with oracle    {pruned.n_variables:7d}  {pruned.n_constraints:10d}  {pruned.runtime_s:8.2f}  {pruned.objective:.4f}",
        f"no oracle      {full.n_variables:7d}  {full.n_constraints:10d}  {full.runtime_s:8.2f}  {full.objective:.4f}",
        f"identical optimum: {abs(pruned.objective - full.objective) < 1e-6}",
        f"variable reduction: {1 - pruned.n_variables / full.n_variables:.1%}",
    ]
    report("fig2_ablation_pruning", rows)
    benchmark.pedantic(
        lambda: solve(design, budget, backend="ilp", use_pruning=True),
        rounds=1,
        iterations=1,
    )
