"""Netsim kernel gate: slotted/lazy-chain engine vs the pre-PR kernel.

The packet engine was overhauled for speed — slotted event entries with
cancellation tokens, commit-on-arrival serialization with a lazily
armed per-link delivery chain (one kernel event per packet-hop instead
of two, heap size independent of queue depth), deque/bisect drop-tail
accounting, ``__slots__`` packets, chunked Poisson draws — under the
hard requirement that results stay *bit-identical*.  This benchmark
embeds a faithful copy of the full pre-PR stack (closure-tuple heap,
``list.pop(0)`` FIFO, finish-plus-delivery event pairs, dict-based
packets, per-call RNG draws, allocating monitor) and runs the same
100+-flow US-topology workload on both.

Gates, in decreasing order of strictness:

1. per-flow ``FlowStats`` must be byte-identical across kernels — the
   overhaul is an optimization, not a remodelling;
2. the packet kernel must beat the pre-PR kernel (regression floor;
   measured ~1.5-2x — same-semantics per-packet simulation in CPython
   is bounded by per-event interpreter cost, most of which both
   kernels share);
3. the *evaluation engine* for Fig 5/11/13-style sweeps — the fluid
   max-min fast path — must be >= 5x faster than the pre-PR kernel
   while its mean per-flow throughput lands within 10% of the packet
   engine's.  This is the engine-level speedup the overhaul delivers
   for sweep-scale workloads; the parity bar is what makes it usable.
"""

import heapq
import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import solve_heuristic
from repro.netsim import FlowMonitor, Network, Simulator, UdpFlow
from repro.netsim.experiments import build_edge_specs, kept_flow_shares
from repro.netsim.fluid import FluidFlow, solve_fluid
from repro.scenarios import us_scenario

from _support import report, write_bench_json

#: Acceptance thresholds (see module docstring).
MIN_KERNEL_SPEEDUP = 1.2
MIN_ENGINE_SPEEDUP = 5.0
MAX_FLUID_THROUGHPUT_ERROR = 0.10

#: Workload shape: tight provisioning pushed past the loss onset with
#: moderate buffers — congested queues, real drops, the Fig 5 regime.
N_SITES = 30
BUDGET_TOWERS = 1000.0
AGGREGATE_GBPS = 100.0
LOAD_FRACTION = 1.3
RATE_SCALE = 2e-3
DURATION_S = 1.0
QUEUE_PACKETS = 300
CAPACITY_MODE = "tight"
SEED = 7


# --------------------------------------------------------------------------
# Faithful copy of the pre-PR stack (engine/packet/link/node/flow/monitor).
# --------------------------------------------------------------------------
class LegacySimulator:
    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._seq = 0
        self._running = False

    @property
    def now(self):
        return self._now

    def schedule(self, delay, callback):
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, when, callback):
        heapq.heappush(self._queue, (when, self._seq, callback))
        self._seq += 1

    def run(self, until=None):
        self._running = True
        while self._queue and self._running:
            t, _, callback = self._queue[0]
            if until is not None and t > until:
                break
            heapq.heappop(self._queue)
            self._now = t
            callback()
        if until is not None and self._now < until:
            self._now = until
        self._running = False


_legacy_packet_ids = itertools.count()


@dataclass
class LegacyPacket:
    """Pre-PR packet: a regular (dict-based) dataclass."""

    flow_id: int
    src: str
    dst: str
    size_bytes: int
    path: tuple
    created_at: float
    seq: int = 0
    is_ack: bool = False
    ack_seq: int = 0
    packet_id: int = field(default_factory=lambda: next(_legacy_packet_ids))
    hop_index: int = 0

    @property
    def size_bits(self):
        return self.size_bytes * 8


@dataclass
class LegacyFlowStats:
    sent: int = 0
    received: int = 0
    dropped: int = 0
    delays: list = field(default_factory=list)


class LegacyFlowMonitor:
    """Pre-PR monitor: ``setdefault`` allocates a FlowStats per call."""

    def __init__(self, sim):
        self.sim = sim
        self.flows = {}

    def _stats(self, flow_id):
        return self.flows.setdefault(flow_id, LegacyFlowStats())

    def record_sent(self, packet):
        self._stats(packet.flow_id).sent += 1

    def record_delivered(self, packet):
        stats = self._stats(packet.flow_id)
        stats.received += 1
        stats.delays.append(self.sim.now - packet.created_at)

    def record_dropped(self, packet):
        self._stats(packet.flow_id).dropped += 1

    def watch_link(self, link):
        link.on_drop(self.record_dropped)


class LegacyLink:
    def __init__(self, sim, name, rate_bps, delay_s, queue_capacity):
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue_capacity = queue_capacity
        self.peer = None
        self._queue = []
        self._busy = False
        self.tx_packets = 0
        self.tx_bits = 0
        self.dropped_packets = 0
        self.busy_time_s = 0.0
        self._up = True
        self._on_drop = None

    def attach(self, peer):
        self.peer = peer

    def on_drop(self, callback):
        self._on_drop = callback

    def send(self, packet):
        if not self._up:
            self.dropped_packets += 1
            if self._on_drop is not None:
                self._on_drop(packet)
            return
        if self._busy:
            if self.queue_capacity and len(self._queue) >= self.queue_capacity:
                self.dropped_packets += 1
                if self._on_drop is not None:
                    self._on_drop(packet)
                return
            self._queue.append(packet)
        else:
            self._transmit(packet)

    def _transmit(self, packet):
        self._busy = True
        tx_time = packet.size_bits / self.rate_bps
        self.busy_time_s += tx_time
        self.tx_packets += 1
        self.tx_bits += packet.size_bits
        self.sim.schedule(tx_time, lambda: self._finish(packet))

    def _finish(self, packet):
        peer = self.peer
        self.sim.schedule(self.delay_s, lambda: peer.receive(packet))
        if self._queue:
            self._transmit(self._queue.pop(0))  # the O(n) dequeue
        else:
            self._busy = False

    def utilization(self, elapsed_s):
        return min(self.busy_time_s / elapsed_s, 1.0)


class LegacyNode:
    def __init__(self, name):
        self.name = name
        self._links = {}
        self._handlers = []
        self._flow_handlers = {}
        self.forwarded = 0
        self.delivered = 0

    def connect(self, link, neighbor):
        self._links[neighbor] = link

    def on_deliver_flow(self, flow_id, handler):
        self._flow_handlers.setdefault(flow_id, []).append(handler)

    def receive(self, packet):
        if packet.path[packet.hop_index + 1] != self.name:
            raise RuntimeError(f"mis-routed packet at {self.name}")
        packet.hop_index += 1
        if packet.hop_index == len(packet.path) - 1:
            self.delivered += 1
            for handler in self._handlers:
                handler(packet)
            for handler in self._flow_handlers.get(packet.flow_id, ()):
                handler(packet)
        else:
            self.forward(packet)

    def forward(self, packet):
        next_hop = packet.path[packet.hop_index + 1]
        self.forwarded += 1
        self._links[next_hop].send(packet)

    def inject(self, packet):
        self._links[packet.path[1]].send(packet)


class LegacyNetwork:
    def __init__(self, sim):
        self.sim = sim
        self.nodes = {}
        self.links = {}

    @classmethod
    def from_edges(cls, sim, edges):
        net = cls(sim)
        for e in edges:
            for name in (e.a, e.b):
                if name not in net.nodes:
                    net.nodes[name] = LegacyNode(name)
        for e in edges:
            for u, v in ((e.a, e.b), (e.b, e.a)):
                link = LegacyLink(
                    sim, f"{u}->{v}", e.rate_bps, e.delay_s, e.queue_capacity
                )
                link.attach(net.nodes[v])
                net.nodes[u].connect(link, v)
                net.links[(u, v)] = link
        return net


class LegacyUdpFlow:
    """Pre-PR flow: one numpy call per inter-arrival gap."""

    def __init__(self, sim, network, monitor, flow_id, path, rate_bps, seed):
        self.sim = sim
        self.network = network
        self.monitor = monitor
        self.flow_id = flow_id
        self.path = tuple(path)
        self.packet_bytes = 500
        self._rng = np.random.default_rng(seed)
        self._interval = self.packet_bytes * 8 / rate_bps
        self._stopped = False
        network.nodes[self.path[-1]].on_deliver_flow(
            flow_id, monitor.record_delivered
        )

    def start(self, at=0.0):
        self.sim.schedule_at(at + self._next_gap(), self._emit)

    def _next_gap(self):
        return float(self._rng.exponential(self._interval))

    def _emit(self):
        if self._stopped:
            return
        packet = LegacyPacket(
            flow_id=self.flow_id,
            src=self.path[0],
            dst=self.path[-1],
            size_bytes=self.packet_bytes,
            path=self.path,
            created_at=self.sim.now,
        )
        self.monitor.record_sent(packet)
        self.network.nodes[self.path[0]].inject(packet)
        self.sim.schedule(self._next_gap(), self._emit)


LEGACY_STACK = (LegacySimulator, LegacyNetwork, LegacyUdpFlow, LegacyFlowMonitor)
NEW_STACK = (Simulator, Network, UdpFlow, FlowMonitor)


# --------------------------------------------------------------------------
# Workload + runners
# --------------------------------------------------------------------------
def build_workload():
    scenario = us_scenario(n_sites=N_SITES)
    topology = solve_heuristic(
        scenario.design_input(), BUDGET_TOWERS, ilp_refinement=False
    ).topology
    specs = build_edge_specs(
        topology, AGGREGATE_GBPS, rate_scale=RATE_SCALE,
        queue_packets=QUEUE_PACKETS, capacity_mode=CAPACITY_MODE,
    )
    node_names = {s.a for s in specs} | {s.b for s in specs}
    kept, kept_mass = kept_flow_shares(
        topology.routed_paths(), topology.design.traffic, node_names, 2e-4
    )
    offered_bps = AGGREGATE_GBPS * 1e9 * RATE_SCALE * LOAD_FRACTION
    flows = [
        (flow_id, node_path, offered_bps * h / kept_mass)
        for flow_id, (_pair, node_path, h) in enumerate(kept)
    ]
    return specs, flows


def run_packet(specs, flows, stack):
    sim_cls, network_cls, flow_cls, monitor_cls = stack
    sim = sim_cls()
    net = network_cls.from_edges(sim, specs)
    monitor = monitor_cls(sim)
    for link in net.links.values():
        monitor.watch_link(link)
    for flow_id, path, rate in flows:
        flow_cls(
            sim, net, monitor, flow_id, path, rate_bps=rate,
            seed=SEED * 100_003 + flow_id,
        ).start()
    t0 = time.perf_counter()
    sim.run(until=DURATION_S)
    return time.perf_counter() - t0, monitor


def flow_stats_identical(legacy_flows, new_flows):
    """Field-wise identity: counters equal, delay floats exactly equal."""
    if set(legacy_flows) != set(new_flows):
        return False
    for fid, legacy in legacy_flows.items():
        new = new_flows[fid]
        if (
            legacy.sent != new.sent
            or legacy.received != new.received
            or legacy.dropped != new.dropped
            or legacy.delays != new.delays
        ):
            return False
    return True


def run_comparison(timing_rounds: int = 3):
    """Compare stacks over ``timing_rounds`` back-to-back rounds.

    Speedups are the *median of per-round paired ratios*: machine noise
    on a shared CI runner is strongly time-correlated, so the ratio of
    adjacent legacy/new runs is far more stable than a ratio of
    independently taken minima.  Identity is checked on every round.
    """
    specs, flows = build_workload()
    legacy_times, new_times, kernel_ratios = [], [], []
    identical = True
    for _ in range(timing_rounds):
        round_legacy_s, legacy_mon = run_packet(specs, flows, LEGACY_STACK)
        round_new_s, new_mon = run_packet(specs, flows, NEW_STACK)
        legacy_times.append(round_legacy_s)
        new_times.append(round_new_s)
        kernel_ratios.append(round_legacy_s / round_new_s)
        identical = identical and flow_stats_identical(
            legacy_mon.flows, new_mon.flows
        )
    legacy_s = min(legacy_times)
    new_s = min(new_times)
    kernel_speedup = float(np.median(kernel_ratios))

    fluid = None
    fluid_s = float("inf")
    for _ in range(timing_rounds):
        t0 = time.perf_counter()
        fluid = solve_fluid(
            specs,
            [FluidFlow(fid, path, rate) for fid, path, rate in flows],
        )
        fluid_s = min(fluid_s, time.perf_counter() - t0)
    packet_mean_bps = new_mon.mean_flow_throughput_bps(DURATION_S)
    fluid_mean_bps = fluid.mean_rate_bps
    parity_error = abs(fluid_mean_bps - packet_mean_bps) / packet_mean_bps

    total_packets = sum(s.sent for s in new_mon.flows.values())
    return {
        "n_flows": len(flows),
        "packets_sent": total_packets,
        "legacy_s": legacy_s,
        "new_s": new_s,
        "fluid_s": fluid_s,
        "kernel_speedup": kernel_speedup,
        "fluid_speedup": legacy_s / fluid_s if fluid_s > 0 else float("inf"),
        "identical": identical,
        "packet_mean_bps": packet_mean_bps,
        "fluid_mean_bps": fluid_mean_bps,
        "parity_error": parity_error,
        "loss_rate": new_mon.overall_loss_rate(),
    }


def bench_netsim_kernel(benchmark=None):
    r = run_comparison()
    rows = [
        f"workload: {r['n_flows']} flows, {r['packets_sent']} packets, "
        f"US {N_SITES}-site topology, tight provisioning at "
        f"{LOAD_FRACTION:.0%} design load (loss {r['loss_rate']:.2%})",
        "engine                 runtime_s  speedup   mean_flow_throughput",
        f"pre-PR packet kernel   {r['legacy_s']:9.3f}  {1.0:6.1f}x   (reference)",
        f"slotted packet kernel  {r['new_s']:9.3f}  "
        f"{r['kernel_speedup']:6.1f}x   {r['packet_mean_bps'] / 1e3:.1f} kbps",
        f"fluid fast path        {r['fluid_s']:9.3f}  "
        f"{r['fluid_speedup']:6.1f}x   {r['fluid_mean_bps'] / 1e3:.1f} kbps",
        f"per-flow FlowStats identical across kernels: {r['identical']}",
        f"fluid vs packet mean-throughput error: {r['parity_error']:.2%} "
        f"(bar: {MAX_FLUID_THROUGHPUT_ERROR:.0%})",
        "note: the same-semantics packet kernel is bounded by shared "
        "per-event interpreter cost; sweep-scale speedups come from the "
        "fluid engine behind run_udp_experiment(engine='fluid')",
    ]
    assert r["identical"], "FlowStats diverged between kernels"
    assert r["kernel_speedup"] >= MIN_KERNEL_SPEEDUP, (
        f"packet kernel speedup {r['kernel_speedup']:.2f}x below the "
        f"{MIN_KERNEL_SPEEDUP:.1f}x regression floor"
    )
    assert r["fluid_speedup"] >= MIN_ENGINE_SPEEDUP, (
        f"fluid engine speedup {r['fluid_speedup']:.1f}x below the "
        f"{MIN_ENGINE_SPEEDUP:.0f}x acceptance bar"
    )
    assert r["parity_error"] <= MAX_FLUID_THROUGHPUT_ERROR, (
        f"fluid throughput off by {r['parity_error']:.1%} "
        f"(> {MAX_FLUID_THROUGHPUT_ERROR:.0%})"
    )
    report("netsim_kernel", rows)
    write_bench_json(
        "netsim",
        {
            "workload": {
                "n_sites": N_SITES,
                "n_flows": r["n_flows"],
                "packets_sent": r["packets_sent"],
                "load_fraction": LOAD_FRACTION,
                "capacity_mode": CAPACITY_MODE,
                "queue_packets": QUEUE_PACKETS,
                "loss_rate": round(r["loss_rate"], 4),
            },
            "legacy_kernel_s": round(r["legacy_s"], 4),
            "packet_kernel_s": round(r["new_s"], 4),
            "fluid_engine_s": round(r["fluid_s"], 4),
            "packet_kernel_speedup": round(r["kernel_speedup"], 2),
            "fluid_engine_speedup": round(r["fluid_speedup"], 2),
            "flowstats_identical": r["identical"],
            "fluid_parity_error": round(r["parity_error"], 4),
        },
    )
    if benchmark is not None:
        specs, flows = build_workload()
        benchmark.pedantic(
            lambda: run_packet(specs, flows, NEW_STACK),
            rounds=1,
            iterations=1,
        )


if __name__ == "__main__":
    bench_netsim_kernel()
