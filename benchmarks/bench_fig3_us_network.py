"""E3 — Fig 3: the flagship US network.

120 population centers, 3,000-tower budget, provisioned for 100 Gbps:
the paper reports 1.05x mean stretch, $0.81/GB, and a hop census of
1,660 / 552 / 86 hops needing 0 / 1 / 2 additional towers at each end.
"""

from repro.core import CostModel, augment_capacity, fiber_only_topology

from _support import full_us_design_input, full_us_scenario, report, us_topology_3000


def bench_fig3_flagship_design(benchmark):
    scenario = full_us_scenario()
    topology = us_topology_3000()
    design = full_us_design_input()

    aug = augment_capacity(topology, scenario.catalog, scenario.registry, 100.0)
    cost = aug.cost_per_gb(CostModel())
    fiber = fiber_only_topology(design).mean_stretch()
    census = dict(sorted(aug.hop_census.items()))

    rows = [
        "metric                          paper      measured",
        f"mean stretch                    1.05       {topology.mean_stretch():.3f}",
        f"fiber-only stretch              1.93       {fiber:.3f}",
        f"budget (towers)                 3000       {topology.total_cost_towers:.0f}",
        f"MW links built                  -          {len(topology.mw_links)}",
        f"hops with 0 new towers          1660       {census.get(0, 0)}",
        f"hops with 1 new tower/end       552        {census.get(1, 0)}",
        f"hops with 2 new towers/end      86         {sum(v for k, v in census.items() if k >= 2)}",
        f"cost per GB at 100 Gbps         $0.81      ${cost:.2f}",
    ]
    report("fig3_us_network", rows)

    benchmark.pedantic(
        lambda: augment_capacity(
            topology, scenario.catalog, scenario.registry, 100.0
        ),
        rounds=1,
        iterations=1,
    )
