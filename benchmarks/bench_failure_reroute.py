"""Extension bench — §6.1 in packets: fail a link, reroute centrally.

The paper argues heavy precipitation is predictable minutes ahead, so
slow centralized management suffices to reroute around failing links.
This bench quantifies the packet-level cost of *reactive* rerouting:
traffic black-holes during the outage window, then recovers on the
recomputed paths (a small residue of congestion remains where alternate
links absorb the displaced demand).
"""

from repro.core import route_link_demands, solve_heuristic
from repro.netsim import run_failure_reroute_experiment
from repro.scenarios import us_scenario

from _support import report


def bench_failure_reroute(benchmark):
    scenario = us_scenario(n_sites=40)
    topology = solve_heuristic(
        scenario.design_input(), 1500.0, ilp_refinement=False
    ).topology
    demands = route_link_demands(topology, 100.0)
    busiest = max(demands, key=demands.get)
    a, b = busiest
    result = run_failure_reroute_experiment(
        topology, 100.0, busiest, fail_at_s=0.3, reroute_delay_s=0.3,
        duration_s=1.2, seed=3,
    )
    rows = [
        f"failed link: {scenario.sites[a].name} <-> {scenario.sites[b].name} "
        f"(busiest, {demands[busiest]:.1f} Gbps design demand)",
        "window            loss_rate",
        f"before failure    {result.loss_before:.4f}",
        f"outage (0.3 s)    {result.loss_during_outage:.4f}",
        f"after reroute     {result.loss_after_reroute:.4f}",
        f"flows rerouted:   {result.flows_rerouted}",
        "shape: reroute recovers most traffic; anticipating the failure "
        "(as §6.1 proposes) would remove the outage window entirely",
    ]
    report("failure_reroute", rows)

    benchmark.pedantic(
        lambda: run_failure_reroute_experiment(
            topology, 100.0, busiest, seed=5
        ),
        rounds=1,
        iterations=1,
    )
