"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and writes
its rows/series to ``benchmarks/results/<experiment>.txt`` (and stdout),
so the paper-vs-measured comparison in EXPERIMENTS.md can be refreshed
by re-running ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import time
from functools import lru_cache
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent


def report(experiment: str, lines: list[str]) -> None:
    """Persist an experiment's output table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{experiment}.txt").write_text(text)
    print(f"\n=== {experiment} ===")
    print(text)


def write_bench_json(experiment: str, payload: dict) -> Path:
    """Append one run record to ``BENCH_<experiment>.json`` at the repo root.

    The file accumulates a machine-readable perf trajectory across PRs:
    ``{"experiment": ..., "runs": [run, ...]}`` with a UTC date stamped
    onto each run.  Corrupt or pre-existing non-JSON content is
    replaced rather than crashing the benchmark.
    """
    path = REPO_ROOT / f"BENCH_{experiment}.json"
    doc: dict = {"experiment": experiment, "runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                doc = loaded
        except ValueError:
            pass
    run = {"date": time.strftime("%Y-%m-%d", time.gmtime()), **payload}
    doc["runs"].append(run)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


@lru_cache(maxsize=1)
def full_us_scenario():
    """The 120-city US scenario (cached across benchmarks)."""
    from repro.scenarios import us_scenario

    return us_scenario()


@lru_cache(maxsize=1)
def full_us_design_input():
    return full_us_scenario().design_input()


@lru_cache(maxsize=4)
def us_greedy_steps(max_budget: float = 9000.0, max_range_km: float = 100.0):
    """One greedy run whose prefixes give every budget point (Fig 4a)."""
    from repro.core import greedy_sequence
    from repro.scenarios import us_scenario

    if max_range_km == 100.0:
        design = full_us_design_input()
    else:
        design = us_scenario(max_range_km=max_range_km).design_input()
    return greedy_sequence(design, max_budget)


@lru_cache(maxsize=2)
def us_topology_3000():
    """The paper's flagship design: 120 cities, 3,000 towers (Fig 3)."""
    from repro.core import solve_heuristic

    result = solve_heuristic(
        full_us_design_input(), 3000.0, ilp_refinement=False
    )
    return result.topology


def stretch_at_budget(steps, budget: float) -> float:
    """Mean stretch of the greedy prefix fitting ``budget``."""
    prefix = [s for s in steps if s.cumulative_cost <= budget]
    if not prefix:
        from repro.core import fiber_only_topology

        return fiber_only_topology(full_us_design_input()).mean_stretch()
    return prefix[-1].mean_stretch
