"""E7 — Fig 5: delay and loss vs offered load under traffic perturbation.

The paper's ns-3 result: with population-perturbed traffic (gamma in
{0.1, 0.3, 0.5}) on the network designed for the unperturbed matrix,
mean delay moves by under ~0.1 ms and loss stays ~0 up to ~70% load;
only heavy load exposes the mismatch.  Rates here are uniformly scaled
down (utilizations preserved) to keep the packet count laptop-sized.
"""

from repro.netsim import run_udp_experiment
from repro.traffic import perturbed_population_matrix

from _support import full_us_scenario, report, us_topology_3000

LOAD_FRACTIONS = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0]
GAMMAS = [0.0, 0.1, 0.3, 0.5]
DESIGN_GBPS = 100.0


def bench_fig5_delay_loss_vs_load(benchmark):
    scenario = full_us_scenario()
    topology = us_topology_3000()
    sites = list(scenario.sites)

    rows = ["gamma  load%  mean_delay_ms  loss_rate"]
    series = {}
    for gamma in GAMMAS:
        traffic = (
            None
            if gamma == 0.0
            else perturbed_population_matrix(sites, gamma=gamma, seed=17)
        )
        for load in LOAD_FRACTIONS:
            res = run_udp_experiment(
                topology,
                DESIGN_GBPS,
                load,
                offered_traffic=traffic,
                duration_s=0.4,
                rate_scale=3e-3,
                capacity_mode="tight",
                seed=3,
            )
            series[(gamma, load)] = res
            rows.append(
                f"{gamma:5.1f}  {load * 100:4.0f}  {res.mean_delay_ms:13.3f}  {res.loss_rate:.4f}"
            )
    # Shape checks mirroring the paper's claims.
    low_load_losses = [series[(g, f)].loss_rate for g in GAMMAS for f in (0.1, 0.3, 0.5, 0.7)]
    rows.append(
        f"loss ~0 up to 70% load for all gammas: {max(low_load_losses):.4f} max"
    )
    base = series[(0.0, 0.7)].mean_delay_ms
    worst = max(series[(g, 0.7)].mean_delay_ms for g in GAMMAS)
    rows.append(f"delay shift at 70% load across gammas: {worst - base:.3f} ms")
    report("fig5_perturbation", rows)

    benchmark.pedantic(
        lambda: run_udp_experiment(
            topology, DESIGN_GBPS, 0.5, duration_s=0.2, rate_scale=1e-3
        ),
        rounds=1,
        iterations=1,
    )
