"""Graph-kernel gate: delta-evaluated evolution scoring >= 5x, same answers.

Before the shared graph kernel (``repro.graph``), the evolution
backend's objective evaluation paid two dense O(n^3) Floyd-Warshall
solves per budget point: one for the traffic-weighted mean stretch and
one (with predecessors) for the routes behind ``mw_shares`` — repeated
from scratch for *every* budget in a sweep.  The kernel path maintains
the all-pairs distance matrix and the per-pair MW-km incrementally
across the greedy prefix (one O(n^2) single-edge delta per added link,
O(n^2) readout per budget, zero full solves).

The baseline below embeds the pre-kernel evaluation verbatim so the
comparison stays honest as the library evolves.  Gates:

1. the kernel evaluation of the full budget table must be >= 5x faster
   than the baseline on the Fig-2-scale workload (120-city US);
2. the selected link sets must be identical at every budget (the
   greedy prefix is shared bit-for-bit — the kernel changes how
   prefixes are *scored*, never which links are picked);
3. mean stretch and the MW-share metrics must agree with the baseline
   within floating-point tolerance (1e-9 relative), and the
   registry-level ``evolution`` backend must land on the same topology.

Each run appends to the ``BENCH_graph_kernel.json`` perf trajectory.
"""

import time

import numpy as np
from scipy.sparse.csgraph import shortest_path

from repro.core import budget_evolution, greedy_sequence, solve
from repro.core.topology import Topology, mean_stretch_from_distances

from _support import full_us_design_input, report, write_bench_json

#: Acceptance threshold (see module docstring).
MIN_SPEEDUP = 5.0

#: Fig-2-scale workload: the full 120-city US design, greedy to the
#: paper's flagship 3,000-tower budget, scored at a dense budget sweep.
GREEDY_BUDGET = 3000.0
BUDGETS = tuple(float(b) for b in range(0, 3001, 125))

#: Relative tolerance for the metric-parity gates.
RTOL = 1e-9


# --------------------------------------------------------------------------
# The embedded pre-kernel baseline (verbatim seed semantics).
# --------------------------------------------------------------------------


def _seed_hybrid_weights(design, links):
    w = design.fiber_km.copy()
    for a, b in links:
        m = design.mw_km[a, b]
        if m < w[a, b]:
            w[a, b] = w[b, a] = m
    np.fill_diagonal(w, 0.0)
    return w


def _seed_routed_paths(design, links):
    # repro: allow[dense-fw-ban] -- embedded pre-kernel baseline the gate measures against
    _, predecessors = shortest_path(
        _seed_hybrid_weights(design, links),
        method="FW",
        directed=False,
        return_predecessors=True,
    )
    n = design.n_sites
    routes = {}
    for s in range(n):
        for t in range(s + 1, n):
            if design.traffic[s, t] <= 0:
                continue
            path = [t]
            node = t
            while node != s:
                node = int(predecessors[s, node])
                if node < 0:
                    break
                path.append(node)
            path.reverse()
            routes[(s, t)] = path
    return routes


def _seed_mw_shares(design, links):
    h = design.traffic
    routes = _seed_routed_paths(design, links)
    mw = set(links)
    total_h = 0.0
    touched_h = 0.0
    mw_km_weighted = 0.0
    total_km_weighted = 0.0
    for (s, t), path in routes.items():
        w = h[s, t]
        total_h += w
        uses_mw = False
        for u, v in zip(path[:-1], path[1:]):
            edge = (min(u, v), max(u, v))
            is_mw = edge in mw and design.mw_km[edge] < design.fiber_km[edge]
            length = design.mw_km[edge] if is_mw else design.fiber_km[edge]
            total_km_weighted += w * length
            if is_mw:
                uses_mw = True
                mw_km_weighted += w * length
        if uses_mw:
            touched_h += w
    return (
        touched_h / total_h,
        mw_km_weighted / total_km_weighted if total_km_weighted > 0 else 0.0,
    )


def seed_budget_evolution(design, steps, budgets):
    """The pre-kernel table: two dense FW solves per budget point."""
    rows = []
    for budget in budgets:
        links = []
        spent = 0.0
        for step in steps:
            if step.cumulative_cost <= budget:
                links.append(step.link)
                spent = step.cumulative_cost
        # repro: allow[dense-fw-ban] -- embedded pre-kernel baseline the gate measures against
        dist = shortest_path(
            _seed_hybrid_weights(design, links), method="FW", directed=False
        )
        traffic_on_mw, distance_share = _seed_mw_shares(design, links)
        rows.append(
            {
                "budget": float(budget),
                "towers_used": spent,
                "links": frozenset(links),
                "mean_stretch": mean_stretch_from_distances(design, dist),
                "traffic_on_mw": traffic_on_mw,
                "distance_share_mw": distance_share,
            }
        )
    return rows


def main() -> None:
    design = full_us_design_input()
    t0 = time.perf_counter()
    steps = greedy_sequence(design, GREEDY_BUDGET)
    t_greedy = time.perf_counter() - t0

    t0 = time.perf_counter()
    baseline = seed_budget_evolution(design, steps, BUDGETS)
    t_baseline = time.perf_counter() - t0

    t0 = time.perf_counter()
    points = budget_evolution(design, steps, list(BUDGETS))
    t_kernel = time.perf_counter() - t0

    speedup = t_baseline / t_kernel if t_kernel > 0 else float("inf")

    # -- parity gates -----------------------------------------------------
    links_identical = True
    max_stretch_diff = 0.0
    max_share_diff = 0.0
    for row, point in zip(baseline, points):
        prefix = frozenset(
            s.link for s in steps if s.cumulative_cost <= point.budget_towers
        )
        if not (row["links"] == prefix and point.n_links == len(prefix)):
            links_identical = False
        max_stretch_diff = max(
            max_stretch_diff,
            abs(row["mean_stretch"] - point.mean_stretch)
            / max(abs(row["mean_stretch"]), 1e-300),
        )
        for key, value in (
            ("traffic_on_mw", point.traffic_on_mw),
            ("distance_share_mw", point.distance_share_mw),
        ):
            max_share_diff = max(max_share_diff, abs(row[key] - value))

    # Registry-level end-to-end check: the evolution backend must select
    # exactly the greedy prefix the table scored.
    outcome = solve(design, GREEDY_BUDGET, backend="evolution")
    final_prefix = frozenset(s.link for s in steps)
    backend_identical = outcome.topology.mw_links == final_prefix
    backend_stretch_diff = abs(
        outcome.objective - baseline[-1]["mean_stretch"]
    ) / max(abs(baseline[-1]["mean_stretch"]), 1e-300)

    n_pairs = design.n_sites * (design.n_sites - 1) // 2
    lines = [
        f"workload                 {design.n_sites} sites / {n_pairs} pairs, "
        f"{len(steps)} greedy links, {len(BUDGETS)} budget points",
        f"greedy sequence          {t_greedy:8.2f} s  (shared by both paths)",
        f"baseline evaluation      {t_baseline:8.3f} s  "
        f"(2 dense FW solves per budget)",
        f"kernel evaluation        {t_kernel:8.3f} s  (delta updates, no solves)",
        f"speedup                  {speedup:8.1f} x  (gate: >= {MIN_SPEEDUP:.0f}x)",
        f"link sets identical      {links_identical}",
        f"backend links identical  {backend_identical}",
        f"max stretch rel diff     {max_stretch_diff:.2e}  (gate: <= {RTOL:.0e})",
        f"max share abs diff       {max_share_diff:.2e}  (gate: <= {RTOL:.0e})",
    ]
    report("graph_kernel", lines)

    assert links_identical, "budget-prefix link sets diverged from the baseline"
    assert backend_identical, (
        "the evolution backend selected different links than the baseline"
    )
    assert max_stretch_diff <= RTOL, (
        f"mean stretch diverged: rel diff {max_stretch_diff:.2e} > {RTOL:.0e}"
    )
    assert max_share_diff <= RTOL, (
        f"MW shares diverged: abs diff {max_share_diff:.2e} > {RTOL:.0e}"
    )
    assert backend_stretch_diff <= RTOL, (
        f"backend objective diverged: {backend_stretch_diff:.2e} > {RTOL:.0e}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"kernel evaluation speedup {speedup:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x gate"
    )

    write_bench_json(
        "graph_kernel",
        {
            "sites": design.n_sites,
            "greedy_links": len(steps),
            "budget_points": len(BUDGETS),
            "greedy_s": round(t_greedy, 3),
            "baseline_eval_s": round(t_baseline, 4),
            "kernel_eval_s": round(t_kernel, 4),
            "speedup": round(speedup, 2),
            "max_stretch_rel_diff": float(max_stretch_diff),
            "max_share_abs_diff": float(max_share_diff),
        },
    )
    print("graph-kernel gate: PASS")


if __name__ == "__main__":
    main()
