"""E9 — Fig 7: stretch across city pairs over a year of precipitation.

One random interval per day for a year: the 99th-percentile stretch per
pair stays near the fair-weather best, and even the worst weather-hit
stretch is far better than fiber (the paper: worst median 1.7x lower
than fiber's).
"""

import numpy as np

from repro.weather import yearly_stretch_analysis

from _support import full_us_scenario, report, us_topology_3000


def _cdf_row(label, values, probes=(0.25, 0.5, 0.75, 0.95)):
    qs = np.quantile(values, probes)
    cells = "  ".join(f"{q:.3f}" for q in qs)
    return f"{label:6s}  {cells}"


def bench_fig7_weather_year(benchmark):
    scenario = full_us_scenario()
    topology = us_topology_3000()
    result = yearly_stretch_analysis(
        topology, scenario.catalog, scenario.registry, n_intervals=365, seed=7
    )
    rows = [
        "CDF quantiles of per-pair stretch     p25    p50    p75    p95",
        _cdf_row("best", result.best),
        _cdf_row("p99", result.p99),
        _cdf_row("worst", result.worst),
        _cdf_row("fiber", result.fiber),
        "",
        f"median(p99)/median(best): {np.median(result.p99) / np.median(result.best):.3f}"
        "  (paper: ~1, '99th percentile comparable to best')",
        f"median(fiber)/median(worst): {np.median(result.fiber) / np.median(result.worst):.2f}"
        "  (paper: >= 1.7)",
        f"intervals with failures: {(result.links_failed_per_interval > 0).mean():.1%}",
        f"mean links failed/interval: {result.links_failed_per_interval.mean():.2f}",
    ]
    report("fig7_weather", rows)

    benchmark.pedantic(
        lambda: yearly_stretch_analysis(
            topology, scenario.catalog, scenario.registry, n_intervals=30, seed=9
        ),
        rounds=1,
        iterations=1,
    )
