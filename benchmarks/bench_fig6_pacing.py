"""E8 — Fig 6: TCP pacing fixes the speed mismatch at cISP ingress.

Ten sources feed a sink through one intermediate node M; the M-D link
is the cISP bottleneck.  When source links jump from bottleneck-rate to
10G-class, unpaced TCP bursts pile up at M; pacing restores the
bottleneck-rate queue profile without hurting flow completion times.

Two regimes are reported:

* *isolated flows* — one 100 KB transfer at a time.  This isolates the
  mechanism: at bottleneck-rate edges the ACK clock self-paces arrivals,
  at 10G-class edges every window arrives as an instantaneous burst.
* *Poisson at 70% load* — the paper's aggregate setting, where
  concurrent slow-starts add overlap-driven queueing on top.

Rates are scaled down uniformly (20 Mbps bottleneck for the paper's
100 Mbps; the 100x mismatch ratio is preserved).
"""

import numpy as np

from repro.netsim import (
    EdgeSpec,
    FlowMonitor,
    Network,
    QueueSampler,
    Simulator,
    TcpFlow,
)

from _support import report

BOTTLENECK_BPS = 20e6
FAST_EDGE_BPS = 2e9
FLOW_BYTES = 100_000
LOAD = 0.7


def _run(edge_rate_bps: float, pacing: bool, isolated: bool, seed: int = 11):
    sim = Simulator()
    edges = [
        EdgeSpec(f"S{i}", "M", edge_rate_bps, 0.002, queue_capacity=10**9)
        for i in range(10)
    ] + [EdgeSpec("M", "D", BOTTLENECK_BPS, 0.018, queue_capacity=10**9)]
    net = Network.from_edges(sim, edges)
    monitor = FlowMonitor(sim)
    sampler = QueueSampler(sim, net.link("M", "D"), interval_s=0.0005)
    sampler.start()
    rng = np.random.default_rng(seed)
    flows = []
    sim_s = 8.0
    if isolated:
        # One flow at a time: generous fixed spacing.
        starts = np.arange(0.0, sim_s, 0.25)
    else:
        gaps = rng.exponential(
            FLOW_BYTES * 8 / (LOAD * BOTTLENECK_BPS), size=2000
        )
        starts = np.cumsum(gaps)
        starts = starts[starts < sim_s]
    for fid, t in enumerate(starts):
        flow = TcpFlow(
            sim,
            net,
            monitor,
            fid,
            (f"S{fid % 10}", "M", "D"),
            FLOW_BYTES,
            pacing=pacing,
            rwnd_packets=90,
        )
        flow.start(at=float(t))
        flows.append(flow)
    sim.run(until=sim_s + 4.0)
    fcts = np.array(
        [f.stats.fct_s for f in flows if f.stats.fct_s is not None]
    )
    return sampler, fcts


def bench_fig6_pacing(benchmark):
    configs = [
        ("bottleneck-rate edge, no pacing", BOTTLENECK_BPS, False),
        ("10G-class edge,       no pacing", FAST_EDGE_BPS, False),
        ("10G-class edge,       pacing", FAST_EDGE_BPS, True),
    ]
    rows = []
    key_q = {}
    for regime, isolated in (("isolated flows", True), ("poisson 70% load", False)):
        rows.append(f"--- {regime} ---")
        rows.append(
            "config                            q_median  q_95th  q_max  fct_median_ms"
        )
        for label, rate, pacing in configs:
            sampler, fcts = _run(rate, pacing, isolated)
            rows.append(
                f"{label:32s}  {sampler.median():8.1f}  {sampler.percentile(95):6.1f}"
                f"  {max(sampler.samples):5d}  {np.median(fcts) * 1000:13.1f}"
            )
            if isolated:
                key_q[(label, "q95")] = float(max(sampler.samples))
    burst = key_q[("10G-class edge,       no pacing", "q95")]
    paced = key_q[("10G-class edge,       pacing", "q95")]
    slow = key_q[("bottleneck-rate edge, no pacing", "q95")]
    rows.append(
        f"isolated-flow peak queue: bottleneck-rate {slow:.0f}, 10G burst {burst:.0f}, "
        f"10G paced {paced:.0f} packets"
    )
    rows.append(
        "shape: bursts queue at the speed mismatch; pacing restores the "
        "bottleneck-rate profile (paper Fig 6a) with comparable FCTs (Fig 6b)"
    )
    report("fig6_pacing", rows)

    benchmark.pedantic(
        lambda: _run(FAST_EDGE_BPS, True, True, seed=5), rounds=1, iterations=1
    )
