"""Sweep-runner gate: warm-cache sweeps >= 3x over the pre-PR sequential path.

Before the orchestration layer, composed sweeps were wired by hand:
every (budget, load) point re-solved the topology design from scratch
and re-ran the evaluation, the way ``repro netsim`` did per invocation
(the substrate was rebuilt per *process*, too — this baseline is
generous and hands it the in-process scenario cache for free).

The :class:`repro.exp.SweepRunner` path memoizes each stage in the
content-addressed artifact store, so a warm rerun of the whole two-axis
(budget x load) sweep reduces to store reads.  Gates:

1. the warm sweep must be >= 3x faster than the sequential baseline;
2. cold and warm sweep records must be byte-identical, and the warm run
   must execute zero substrate/design stages (all cache hits);
3. a ``jobs=4`` warm run must produce byte-identical records to
   ``jobs=1`` (parallelism never changes results);
4. the sweep's netsim metrics must equal the baseline's — the
   orchestration layer composes the same experiment, it does not
   remodel it.

Each run appends to the ``BENCH_sweep_runner.json`` perf trajectory.
"""

import os
import tempfile
import time

from repro.core import solve_heuristic
from repro.exp import (
    ArtifactStore,
    DesignSpec,
    ExperimentSpec,
    NetsimSpec,
    ScenarioSpec,
    SweepRunner,
)
from repro.netsim import run_udp_experiment
from repro.scenarios import us_scenario

from _support import report, write_bench_json

#: Acceptance threshold (see module docstring).
MIN_WARM_SPEEDUP = 3.0

#: The two-axis workload: a Fig 4a-style budget sweep crossed with a
#: Fig 5-style load sweep, on the 20-city US scenario.
N_SITES = 20
AGGREGATE_GBPS = 100.0
BUDGETS = (400.0, 800.0, 1200.0)
LOADS = (0.3, 0.6, 0.9)
ENGINE = "fluid"
SEED = 0

AXES = {
    "design.budget_towers": list(BUDGETS),
    "netsim.loads": [(load,) for load in LOADS],
}


def base_spec() -> ExperimentSpec:
    return ExperimentSpec(
        scenario=ScenarioSpec(name="us", sites=N_SITES, seed=42),
        design=DesignSpec(
            budget_towers=BUDGETS[0],
            solver="heuristic",
            aggregate_gbps=AGGREGATE_GBPS,
            solver_opts={"ilp_refinement": False},
        ),
        netsim=NetsimSpec(loads=(LOADS[0],), engine=ENGINE, seed=SEED),
    )


def run_sequential_baseline(scenario) -> list[dict]:
    """The pre-PR composition: re-solve the design at every budget."""
    rows = []
    for budget in BUDGETS:
        topology = solve_heuristic(
            scenario.design_input(), budget, ilp_refinement=False
        ).topology
        for load in LOADS:
            res = run_udp_experiment(
                topology,
                AGGREGATE_GBPS,
                load,
                seed=SEED,
                engine=ENGINE,
            )
            rows.append(
                {
                    "budget_towers": budget,
                    "load": load,
                    "mean_delay_ms": float(res.mean_delay_ms),
                    "loss_rate": float(res.loss_rate),
                    "max_link_utilization": float(res.max_link_utilization),
                }
            )
    return rows


def netsim_rows(records: list[dict]) -> list[dict]:
    return [
        {
            "budget_towers": row["design.budget_towers"],
            "load": row["load"],
            "mean_delay_ms": row["mean_delay_ms"],
            "loss_rate": row["loss_rate"],
            "max_link_utilization": row["max_link_utilization"],
        }
        for row in records
        if row["stage"] == "netsim"
    ]


def bench_sweep_runner(benchmark=None):
    # Build the substrate up front so the sequential baseline gets it
    # for free (pre-PR CLI runs actually rebuilt it per process).
    scenario = us_scenario(n_sites=N_SITES, seed=42)

    t0 = time.perf_counter()
    baseline_rows = run_sequential_baseline(scenario)
    t_seq = time.perf_counter() - t0

    store_root = os.environ.get("REPRO_ARTIFACT_DIR")
    tmp = None
    if store_root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
        store_root = tmp.name
    store = ArtifactStore(store_root)

    spec = base_spec()
    t0 = time.perf_counter()
    cold = SweepRunner(spec, AXES, store=store, jobs=1).run()
    t_cold = time.perf_counter() - t0

    # A *fresh* store instance models a new session over the same cache
    # directory: every artifact comes off disk (once — the per-process
    # memory layer dedups the nine points' shared substrate/designs).
    t0 = time.perf_counter()
    warm = SweepRunner(spec, AXES, store=ArtifactStore(store_root), jobs=1).run()
    t_warm = time.perf_counter() - t0

    warm_parallel = SweepRunner(
        spec, AXES, store=ArtifactStore(store_root), jobs=4
    ).run()

    speedup = t_seq / t_warm if t_warm > 0 else float("inf")
    n_points = len(BUDGETS) * len(LOADS)
    rows = [
        "sweep-runner warm-cache gate (two-axis budget x load sweep)",
        f"workload: us-{N_SITES}, {len(BUDGETS)} budgets x {len(LOADS)} loads "
        f"= {n_points} points, engine={ENGINE}",
        f"sequential pre-PR path   {t_seq:8.3f} s",
        f"sweep cold (fills cache) {t_cold:8.3f} s",
        f"sweep warm               {t_warm:8.3f} s",
        f"warm speedup             {speedup:8.1f} x  (gate: >= {MIN_WARM_SPEEDUP:.0f}x)",
        f"warm substrate/design executions: "
        f"{warm.executed('substrate')}/{warm.executed('design')}",
    ]

    identical = cold.records_json() == warm.records_json()
    parallel_identical = warm.records_json() == warm_parallel.records_json()
    baseline_matches = netsim_rows(warm.records) == baseline_rows
    rows.append(f"cold == warm records: {identical}")
    rows.append(f"jobs=1 == jobs=4 records: {parallel_identical}")
    rows.append(f"sweep matches sequential baseline metrics: {baseline_matches}")

    try:
        assert identical, "warm-cache sweep records differ from the cold run"
        assert parallel_identical, "jobs=4 records differ from jobs=1"
        assert baseline_matches, (
            "sweep netsim metrics differ from the sequential baseline"
        )
        assert warm.executed("substrate") == 0 and warm.executed("design") == 0, (
            "warm sweep re-executed substrate/design stages"
        )
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm sweep speedup {speedup:.1f}x below the "
            f"{MIN_WARM_SPEEDUP:.0f}x acceptance bar"
        )
        report("sweep_runner", rows)
        write_bench_json(
            "sweep_runner",
            {
                "workload": {
                    "n_sites": N_SITES,
                    "budgets": list(BUDGETS),
                    "loads": list(LOADS),
                    "engine": ENGINE,
                    "points": n_points,
                },
                "sequential_s": round(t_seq, 4),
                "sweep_cold_s": round(t_cold, 4),
                "sweep_warm_s": round(t_warm, 4),
                "warm_speedup": round(speedup, 2),
                "records_identical": identical,
                "jobs4_identical": parallel_identical,
                "baseline_metrics_match": baseline_matches,
            },
        )
    finally:
        if tmp is not None:
            tmp.cleanup()

    if benchmark is not None:
        benchmark.pedantic(
            lambda: SweepRunner(spec, AXES, store=store, jobs=1).run(),
            rounds=1,
            iterations=1,
        )


if __name__ == "__main__":
    bench_sweep_runner()
