"""E10 — Fig 8: a European cISP of the same scale and cost.

Cities above 300k population, fiber assumed 1.9x-inflated over geodesic
as in the US: the paper reaches 1.04x mean stretch with ~3k towers and
similar cost, concluding US geography is not special.
"""

from repro.core import augment_capacity, fiber_only_topology, solve_heuristic
from repro.scenarios import europe_scenario

from _support import report


def bench_fig8_europe(benchmark):
    scenario = europe_scenario()
    design = scenario.design_input()
    result = solve_heuristic(design, 3000.0, ilp_refinement=False)
    aug = augment_capacity(
        result.topology, scenario.catalog, scenario.registry, 100.0
    )
    rows = [
        "metric                      paper     measured",
        f"cities (>300k pop)          -         {scenario.n_sites}",
        f"mean stretch                1.04      {result.objective:.3f}",
        f"fiber-only stretch          1.93      {fiber_only_topology(design).mean_stretch():.3f}",
        f"towers used                 ~3000     {result.topology.total_cost_towers:.0f}",
        f"cost per GB at 100 Gbps     ~$0.81    ${aug.cost_per_gb():.2f}",
        f"MW links built              -         {len(result.topology.mw_links)}",
    ]
    report("fig8_europe", rows)

    benchmark.pedantic(
        lambda: solve_heuristic(design, 1000.0, ilp_refinement=False),
        rounds=1,
        iterations=1,
    )
