"""E15 — Fig 13: Web page load times under cISP latency reduction.

80 synthetic pages replayed at baseline RTTs, at 0.33x RTTs ("cISP"),
and with only client-to-server latencies at 0.33x ("cISP-selective").
Paper: median PLT -31%, object load time -49%, small objects -59%,
selective -27% while moving only 8.5% of bytes.
"""

import numpy as np

from repro.apps import compare_corpus, synthesize_pages

from _support import report


def bench_fig13_web(benchmark):
    pages = synthesize_pages(80, seed=1)
    cmp = compare_corpus(pages)
    rows = [
        "metric                         paper   measured",
        f"median PLT reduction (cISP)    31%     {cmp.median_plt_reduction('cisp') * 100:.0f}%",
        f"median PLT reduction (select)  27%     {cmp.median_plt_reduction('selective') * 100:.0f}%",
        f"median OLT reduction           49%     {cmp.median_olt_reduction() * 100:.0f}%",
        f"small-object OLT reduction     59%     {cmp.median_olt_reduction(small_only=True) * 100:.0f}%",
        f"bytes on cISP (selective)      8.5%    {cmp.upstream_byte_fraction * 100:.1f}%",
        "",
        "PLT CDF quantiles (ms)      p25     p50     p75     p95",
    ]
    for label, values in (
        ("baseline", cmp.baseline_plts),
        ("cISP", cmp.cisp_plts),
        ("selective", cmp.selective_plts),
    ):
        qs = np.quantile(values, [0.25, 0.5, 0.75, 0.95])
        rows.append(
            f"{label:24s} {qs[0]:7.0f} {qs[1]:7.0f} {qs[2]:7.0f} {qs[3]:7.0f}"
        )
    report("fig13_web", rows)

    benchmark.pedantic(
        lambda: compare_corpus(synthesize_pages(10, seed=2)),
        rounds=1,
        iterations=1,
    )
