"""E11 — Fig 9: cost per GB for the three deployment models.

City-city (the paper's primary model) is the most expensive across the
throughput sweep; DC-DC and city-DC networks have a far smaller
infrastructure footprint (few sites / few long links), so their $/GB
falls well below the city-city curve.
"""

from repro.core import augment_capacity, solve_heuristic
from repro.scenarios import (
    city_dc_scenario,
    city_dc_traffic,
    dc_dc_traffic,
    interdc_scenario,
)

from _support import full_us_scenario, report, us_topology_3000

THROUGHPUTS_GBPS = [10, 50, 100, 200]


def _cost_curve(scenario, topology):
    return [
        augment_capacity(
            topology, scenario.catalog, scenario.registry, float(g)
        ).cost_per_gb()
        for g in THROUGHPUTS_GBPS
    ]


def bench_fig9_traffic_models(benchmark):
    # City-city: the flagship design.
    cc_scenario = full_us_scenario()
    cc_topology = us_topology_3000()
    cc_costs = _cost_curve(cc_scenario, cc_topology)

    # DC-DC: six sites, equal demand.
    dc_scenario = interdc_scenario()
    dc_design = dc_scenario.design_input(dc_dc_traffic(dc_scenario))
    dc_topology = solve_heuristic(dc_design, 800.0, ilp_refinement=False).topology
    dc_costs = _cost_curve(dc_scenario, dc_topology)

    # City-DC: population-weighted to the nearest data center.
    cdc_scenario = city_dc_scenario()
    cdc_design = cdc_scenario.design_input(city_dc_traffic(cdc_scenario))
    cdc_topology = solve_heuristic(cdc_design, 1500.0, ilp_refinement=False).topology
    cdc_costs = _cost_curve(cdc_scenario, cdc_topology)

    rows = ["aggregate_gbps  city_city  dc_dc   city_dc"]
    for i, g in enumerate(THROUGHPUTS_GBPS):
        rows.append(
            f"{g:14d}  ${cc_costs[i]:7.3f}  ${dc_costs[i]:6.3f}  ${cdc_costs[i]:6.3f}"
        )
    cheaper = all(
        dc <= cc and cdc <= cc
        for cc, dc, cdc in zip(cc_costs, dc_costs, cdc_costs)
    )
    rows.append(f"city-city most expensive at every throughput: {cheaper}")
    report("fig9_traffic_models", rows)

    benchmark.pedantic(
        lambda: _cost_curve(dc_scenario, dc_topology), rounds=1, iterations=1
    )
