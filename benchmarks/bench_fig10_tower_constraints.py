"""E12 — Fig 10: tighter tower constraints raise cost and stretch mildly.

Restricting the usable mounting height (antennae cannot always go at
the tower top) and the maximum hop range eliminates towers and hops; the
paper measures at most ~11% extra cost and ~10% extra stretch across ten
(range, height-fraction) combinations — tower-siting trouble does not
change the conclusions.

Scenario note: we run at a reduced city count so ten full substrate
rebuilds stay within benchmark time; the constraint *ordering* is scale-
independent.
"""

from repro.core import augment_capacity, solve_heuristic
from repro.scenarios import us_scenario

from _support import report

#: The paper's (range km, usable height fraction) combinations,
#: baseline first.
COMBOS = [
    (100.0, 1.0),
    (100.0, 0.85),
    (80.0, 1.0),
    (100.0, 0.65),
    (70.0, 1.0),
    (100.0, 0.45),
    (70.0, 0.45),
    (60.0, 1.0),
    (60.0, 0.65),
    (60.0, 0.45),
]

N_SITES = 40
BUDGET = 1400.0
AGGREGATE_GBPS = 100.0


def _evaluate(range_km: float, height_fraction: float):
    scenario = us_scenario(
        n_sites=N_SITES,
        max_range_km=range_km,
        usable_height_fraction=height_fraction,
    )
    design = scenario.design_input()
    result = solve_heuristic(design, BUDGET, ilp_refinement=False)
    aug = augment_capacity(
        result.topology, scenario.catalog, scenario.registry, AGGREGATE_GBPS
    )
    return result.objective, aug.cost_per_gb()


def bench_fig10_tower_constraints(benchmark):
    base_stretch, base_cost = _evaluate(*COMBOS[0])
    rows = [
        f"baseline: stretch={base_stretch:.4f} cost=${base_cost:.3f}/GB",
        "range_km  height_frac  stretch_increase%  cost_increase%",
    ]
    worst_stretch, worst_cost = 0.0, 0.0
    for range_km, frac in COMBOS[1:]:
        stretch, cost = _evaluate(range_km, frac)
        ds = (stretch - base_stretch) / base_stretch * 100.0
        dc = (cost - base_cost) / base_cost * 100.0
        worst_stretch = max(worst_stretch, ds)
        worst_cost = max(worst_cost, dc)
        rows.append(f"{range_km:8.0f}  {frac:11.2f}  {ds:17.1f}  {dc:14.1f}")
    rows.append(
        f"max increases: stretch {worst_stretch:.1f}% (paper: ~10%), "
        f"cost {worst_cost:.1f}% (paper: ~11%)"
    )
    report("fig10_tower_constraints", rows)

    benchmark.pedantic(lambda: _evaluate(100.0, 0.85), rounds=1, iterations=1)
