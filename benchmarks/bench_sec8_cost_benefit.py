"""E16 — §8: value per GB vs the network's cost per GB.

The paper's bottom line: web search $1.84-$3.74/GB, e-commerce
$3.26-$22.82/GB, gaming >= $3.7/GB — all well above the measured cost.
We compare against *our* measured Fig 3 cost rather than assuming the
paper's $0.81.
"""

from repro.apps import all_estimates
from repro.core import augment_capacity

from _support import full_us_scenario, report, us_topology_3000


def bench_sec8_cost_benefit(benchmark):
    scenario = full_us_scenario()
    topology = us_topology_3000()
    aug = augment_capacity(topology, scenario.catalog, scenario.registry, 100.0)
    cost = aug.cost_per_gb()
    rows = [
        f"measured network cost: ${cost:.2f}/GB (paper: $0.81/GB)",
        "scenario      low_$per_GB  high_$per_GB  exceeds_cost",
    ]
    all_exceed = True
    for est in all_estimates():
        exceeds = est.exceeds_cost(cost)
        all_exceed &= exceeds
        rows.append(
            f"{est.label:12s}  ${est.low_usd_per_gb:10.2f}  ${est.high_usd_per_gb:11.2f}  {exceeds}"
        )
    rows.append(f"every scenario's value exceeds the cost: {all_exceed}")
    report("sec8_cost_benefit", rows)

    benchmark.pedantic(lambda: all_estimates(), rounds=5, iterations=1)
