"""E5 — Fig 4(b): tower-disjoint shortest paths on the longest link.

The paper picks the ~2,700 km Illinois-California link of Fig 3,
repeatedly removes all towers of the shortest MW path, and shows the
stretch of the k-th disjoint path climbing only gently (1.02 to ~1.15
over 20 iterations) — far below the fiber route's 1.75.
"""

import numpy as np

from repro.links import tower_disjoint_paths

from _support import full_us_scenario, report


def _illinois_california_pair(scenario):
    """The paper's 2,700 km Illinois-California link: Chicago <-> Los
    Angeles in our site list (falls back to the longest MW pair)."""
    names = [s.name for s in scenario.sites]
    try:
        return names.index("Chicago"), names.index("Los Angeles")
    except ValueError:
        pass
    best, best_d = None, 0.0
    for (a, b), _link in scenario.catalog.links.items():
        d = scenario.geodesic_km[a, b]
        if d > best_d:
            best, best_d = (a, b), d
    return best


def bench_fig4b_disjoint_paths(benchmark):
    scenario = full_us_scenario()
    a, b = _illinois_california_pair(scenario)
    a, b = min(a, b), max(a, b)
    site_a, site_b = scenario.sites[a], scenario.sites[b]
    fiber_stretch = scenario.fiber_km[a, b] / scenario.geodesic_km[a, b]

    paths = tower_disjoint_paths(
        site_a, site_b, scenario.registry, scenario.hop_graph, max_iterations=20
    )
    rows = [
        f"link: {site_a.name} <-> {site_b.name}, "
        f"{scenario.geodesic_km[a, b]:.0f} km geodesic",
        f"fiber stretch: {fiber_stretch:.3f} (paper: 1.75)",
        "iteration  stretch",
    ]
    for p in paths:
        rows.append(f"{p.iteration:9d}  {p.stretch:.4f}")
    if paths:
        rows.append(
            f"shape: stretch grows {paths[0].stretch:.3f} -> "
            f"{paths[-1].stretch:.3f} over {len(paths)} iterations, "
            f"all below fiber ({fiber_stretch:.2f})"
        )
        stretches = np.array([p.stretch for p in paths])
        assert np.all(np.diff(stretches) >= -1e-9)
    report("fig4b_disjoint_paths", rows)

    benchmark.pedantic(
        lambda: tower_disjoint_paths(
            site_a, site_b, scenario.registry, scenario.hop_graph, max_iterations=3
        ),
        rounds=1,
        iterations=1,
    )
