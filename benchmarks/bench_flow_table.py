"""Array-native flow-table gate: zero-object end-to-end evaluation at
10^6 flows.

PR-6 vectorized the *solver*; the workload still reached it as a list
of a million ``FluidFlow`` objects built one Python allocation at a
time, and profiles showed ~90% of wall-clock in that front-end.  PR-9
adds the struct-of-arrays path (``PathPool``/``FlowTable`` →
``CommodityTable`` → ``_CommodityProblem.from_table``) where the
workload never leaves numpy.  This benchmark pins three promises:

1. **Scale** — from raw demand arrays to per-flow rates on a 10^6-flow
   continental workload, the table path must be >= 10x the object path
   end-to-end (workload build + problem setup + progressive fill).
2. **Exactness** — per-flow rates must match the object path to
   <= 1e-9 relative at 10^6 flows, and *bit for bit* (exact float
   equality) on the PR-6 metro/core 10^5-flow workload pushed through
   both front-ends.
3. **Footprint** — peak RSS after the table-path build + solve at 10^6
   flows stays under 2 GB (the table path runs first so the ceiling
   reads its footprint, not the object path's).
"""

import resource
import time

import numpy as np

from repro.netsim import (
    FlowTable,
    FluidFlow,
    PathPool,
    max_min_rates_table,
    max_min_rates_vectorized,
)

from _support import report, write_bench_json

#: Acceptance thresholds (see module docstring).
MIN_TABLE_SPEEDUP = 10.0
MAX_RATE_PARITY_REL = 1e-9
MAX_PEAK_RSS_BYTES = 2 * 1024**3

#: Million-flow workload shape: single-homed metros behind a core mesh,
#: so paths collapse to one commodity per metro pair and the front-end
#: (not the fill loop) dominates end-to-end time.
N_CORE = 24
N_METRO = 240
N_FLOWS = 1_000_000
N_TIERS = 256
MEAN_DEMAND_BPS = 2e6
SEED = 11

#: Bit-parity workload: PR-6's dual-homed 10^5-flow metro/core shape.
PARITY_N_FLOWS = 100_000
PARITY_MEAN_DEMAND_BPS = 2e7
PARITY_SEED = 7


def build_core_capacities():
    cores = [f"core{i}" for i in range(N_CORE)]
    capacities = {}
    for i, u in enumerate(cores):
        for v in cores[i + 1:]:
            capacities[(u, v)] = 40e9
            capacities[(v, u)] = 40e9
    return cores, capacities


def build_raw_million_flow_demands():
    """The raw workload as plain arrays: (src metro, dst metro, demand).

    This is the input *both* front-ends start from — the benchmark
    measures everything downstream of these arrays.
    """
    rng = np.random.default_rng(SEED)
    raw = (rng.pareto(1.3, size=N_FLOWS) + 1.0) * MEAN_DEMAND_BPS
    tier_rates = np.quantile(raw, np.linspace(0, 1, N_TIERS + 1)[1:])
    demands = tier_rates[
        np.searchsorted(tier_rates, raw).clip(max=N_TIERS - 1)
    ]
    src = rng.integers(0, N_METRO, size=N_FLOWS)
    dst = rng.integers(0, N_METRO, size=N_FLOWS)
    dst = np.where(src == dst, (dst + 1) % N_METRO, dst)
    return src, dst, demands


def million_flow_network():
    cores, capacities = build_core_capacities()
    home = [cores[m % N_CORE] for m in range(N_METRO)]
    for m in range(N_METRO):
        metro = f"metro{m}"
        capacities[(metro, home[m])] = 10e9
        capacities[(home[m], metro)] = 10e9
    return home, capacities


def table_path_end_to_end(src, dst, demands, home, capacities):
    """Raw arrays -> rates, never materializing per-flow objects."""
    pair_code = src * N_METRO + dst
    seen = np.zeros(N_METRO * N_METRO, dtype=bool)
    seen[pair_code] = True
    unique_codes = np.flatnonzero(seen)
    path_id = (np.cumsum(seen) - 1)[pair_code]
    u_src, u_dst = np.divmod(unique_codes, N_METRO)
    paths = []
    for s, d in zip(u_src.tolist(), u_dst.tolist()):
        hs, hd = home[s], home[d]
        inner = (hs,) if hs == hd else (hs, hd)
        paths.append((f"metro{s}",) + inner + (f"metro{d}",))
    pool = PathPool.from_paths(paths)
    table = FlowTable(
        pool=pool,
        path_id=path_id,
        demand_bps=demands,
        flow_ids=np.arange(N_FLOWS, dtype=np.int64),
    )
    return max_min_rates_table(capacities, table)


def object_path_end_to_end(src, dst, demands, home, capacities):
    """Raw arrays -> rates through the FluidFlow-object reference."""
    flows = []
    for i in range(N_FLOWS):
        s, d = int(src[i]), int(dst[i])
        hs, hd = home[s], home[d]
        if hs == hd:
            path = (f"metro{s}", hs, f"metro{d}")
        else:
            path = (f"metro{s}", hs, hd, f"metro{d}")
        flows.append(FluidFlow(i, path, float(demands[i])))
    return max_min_rates_vectorized(capacities, flows)


def run_scale_gate(timing_rounds: int = 3):
    home, capacities = million_flow_network()
    src, dst, demands = build_raw_million_flow_demands()

    # Table path FIRST: the RSS ceiling must reflect the array path's
    # footprint, before a million FluidFlow objects inflate the peak.
    table_times = []
    table_rates = None
    for _ in range(timing_rounds):
        t0 = time.perf_counter()
        table_rates = table_path_end_to_end(
            src, dst, demands, home, capacities
        )
        table_times.append(time.perf_counter() - t0)
    table_s = float(np.median(table_times))
    peak_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024

    t0 = time.perf_counter()
    object_rates = object_path_end_to_end(
        src, dst, demands, home, capacities
    )
    object_s = time.perf_counter() - t0

    object_vec = np.array(
        [object_rates[i] for i in range(N_FLOWS)]
    )
    parity = float(
        np.max(
            np.abs(table_rates - object_vec)
            / np.maximum(np.abs(object_vec), 1e-9)
        )
    )
    return {
        "n_links": len(capacities),
        "n_flows": N_FLOWS,
        "n_commodities": len(np.unique(src * N_METRO + dst)),
        "object_s": object_s,
        "table_s": table_s,
        "speedup": object_s / table_s,
        "carried_fraction": float(table_rates.sum() / demands.sum()),
        "parity_rel": parity,
        "peak_rss_bytes": peak_rss,
    }


def build_parity_workload():
    """PR-6's dual-homed metro/core 10^5-flow workload, in both forms.

    Mirrors ``bench_fluid_engine.build_metro_core_workload`` (same
    seed, same draws) so the bit-identity gate runs on the exact
    workload the vectorized-solver gate already certifies.
    """
    rng = np.random.default_rng(PARITY_SEED)
    cores, capacities = build_core_capacities()
    homes = {}
    for m in range(N_METRO):
        metro = f"metro{m}"
        h1 = cores[m % N_CORE]
        h2 = cores[(m * 7 + 3) % N_CORE]
        if h2 == h1:
            h2 = cores[(m * 7 + 4) % N_CORE]
        homes[metro] = (h1, h2)
        for h in (h1, h2):
            capacities[(metro, h)] = 10e9
            capacities[(h, metro)] = 10e9

    raw = (rng.pareto(1.3, size=PARITY_N_FLOWS) + 1.0) * PARITY_MEAN_DEMAND_BPS
    tier_rates = np.quantile(raw, np.linspace(0, 1, N_TIERS + 1)[1:])
    tiers = tier_rates[
        np.searchsorted(tier_rates, raw).clip(max=N_TIERS - 1)
    ]

    metros = list(homes)
    src = rng.integers(0, N_METRO, size=PARITY_N_FLOWS)
    dst = rng.integers(0, N_METRO, size=PARITY_N_FLOWS)
    pick = rng.integers(0, 2, size=(PARITY_N_FLOWS, 2))
    flows = []
    for i in range(PARITY_N_FLOWS):
        s, d = metros[src[i]], metros[dst[i]]
        if s == d:
            d = metros[(dst[i] + 1) % N_METRO]
        hs = homes[s][pick[i, 0]]
        hd = homes[d][pick[i, 1]]
        path = (s, hs, d) if hs == hd else (s, hs, hd, d)
        flows.append(FluidFlow(i, path, float(tiers[i])))

    pool = PathPool.from_paths([f.path for f in flows])
    table = FlowTable(
        pool=pool,
        path_id=np.arange(PARITY_N_FLOWS, dtype=np.int64),
        demand_bps=np.array([f.offered_bps for f in flows]),
        flow_ids=np.arange(PARITY_N_FLOWS, dtype=np.int64),
    )
    return capacities, flows, table


def run_bit_parity_gate():
    capacities, flows, table = build_parity_workload()
    object_rates = max_min_rates_vectorized(capacities, flows)
    table_rates = max_min_rates_table(capacities, table)
    as_dict = dict(zip(table.flow_ids.tolist(), table_rates.tolist()))
    return {
        "bit_parity_n_flows": len(flows),
        "bit_identical": as_dict == object_rates,
    }


def bench_flow_table(benchmark=None):
    scale = run_scale_gate()
    bits = run_bit_parity_gate()

    rows = [
        f"workload: {scale['n_flows']} flows "
        f"({scale['n_commodities']} pair commodities) over "
        f"{scale['n_links']} directed links, saturated "
        f"(carried {scale['carried_fraction']:.1%} of offered)",
        "front-end + solve         runtime_s   speedup",
        f"FluidFlow objects         {scale['object_s']:9.3f}  {1.0:7.1f}x",
        f"array-native table        {scale['table_s']:9.3f}  "
        f"{scale['speedup']:7.1f}x",
        f"rate parity vs object path: {scale['parity_rel']:.3g} rel "
        f"(bar {MAX_RATE_PARITY_REL:.0e})",
        f"bit-identical on the {bits['bit_parity_n_flows']}-flow PR-6 "
        f"workload: {bits['bit_identical']}",
        f"peak RSS after table path: "
        f"{scale['peak_rss_bytes'] / 1024**3:.2f} GiB "
        f"(bar {MAX_PEAK_RSS_BYTES / 1024**3:.0f} GiB)",
    ]
    assert scale["speedup"] >= MIN_TABLE_SPEEDUP, (
        f"table path speedup {scale['speedup']:.1f}x below the "
        f"{MIN_TABLE_SPEEDUP:.0f}x acceptance bar"
    )
    assert scale["parity_rel"] <= MAX_RATE_PARITY_REL, (
        f"million-flow rate parity {scale['parity_rel']:.3g} exceeds "
        f"{MAX_RATE_PARITY_REL:.0e} relative"
    )
    assert bits["bit_identical"], (
        "table front-end is not bit-identical to the object path on "
        "the PR-6 metro/core workload"
    )
    assert scale["peak_rss_bytes"] <= MAX_PEAK_RSS_BYTES, (
        f"table-path peak RSS {scale['peak_rss_bytes'] / 1024**3:.2f} GiB "
        f"exceeds the {MAX_PEAK_RSS_BYTES / 1024**3:.0f} GiB ceiling"
    )
    report("flow_table", rows)
    write_bench_json(
        "netsim",
        {
            "benchmark": "flow_table",
            "workload": {
                "n_core": N_CORE,
                "n_metro": N_METRO,
                "n_flows": scale["n_flows"],
                "n_commodities": scale["n_commodities"],
                "n_links": scale["n_links"],
                "n_tiers": N_TIERS,
                "carried_fraction": round(scale["carried_fraction"], 4),
            },
            "object_s": round(scale["object_s"], 4),
            "table_s": round(scale["table_s"], 4),
            "table_speedup": round(scale["speedup"], 1),
            "parity_rel": scale["parity_rel"],
            "bit_identical_100k": bits["bit_identical"],
            "peak_rss_gib": round(scale["peak_rss_bytes"] / 1024**3, 3),
        },
    )
    if benchmark is not None:
        home, capacities = million_flow_network()
        src, dst, demands = build_raw_million_flow_demands()
        benchmark.pedantic(
            lambda: table_path_end_to_end(
                src, dst, demands, home, capacities
            ),
            rounds=1,
            iterations=1,
        )


if __name__ == "__main__":
    bench_flow_table()
