"""E14 — Fig 12: thin-client gaming frame time with speculation + cISP.

Frame time vs conventional-connectivity latency, with and without the
low-latency augmentation (fast path at 1/3 the latency, speculative
frames over fiber).  The augmented curve's slope is ~3x shallower.
"""

import numpy as np

from repro.apps import frame_time_curve

from _support import report

LATENCIES_MS = [0, 50, 100, 150, 200, 250, 300]


def bench_fig12_gaming(benchmark):
    with_aug = frame_time_curve(LATENCIES_MS, use_augmentation=True, seed=3)
    without = frame_time_curve(LATENCIES_MS, use_augmentation=False, seed=3)
    rows = ["conv_latency_ms  frame_aug_ms  frame_conv_ms"]
    for lat, a, c in zip(LATENCIES_MS, with_aug, without):
        rows.append(
            f"{lat:15d}  {a.mean_frame_time_ms:12.1f}  {c.mean_frame_time_ms:13.1f}"
        )
    # Slopes via least squares over the latency sweep.
    slope_aug = np.polyfit(
        LATENCIES_MS, [p.mean_frame_time_ms for p in with_aug], 1
    )[0]
    slope_conv = np.polyfit(
        LATENCIES_MS, [p.mean_frame_time_ms for p in without], 1
    )[0]
    rows.append(
        f"frame-time slope: augmented {slope_aug:.2f} ms/ms vs conventional "
        f"{slope_conv:.2f} ms/ms (paper: ~3x reduction)"
    )
    report("fig12_gaming", rows)

    benchmark.pedantic(
        lambda: frame_time_curve([100.0], use_augmentation=True),
        rounds=3,
        iterations=1,
    )
