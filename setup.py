"""Setup shim for environments whose setuptools predates PEP 660.

``pip install -e .`` on modern toolchains uses pyproject.toml directly;
older offline environments fall back to this file.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "cISP: A Speed-of-Light Internet Service Provider - "
        "full reproduction (NSDI 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9", "networkx>=2.8"],
)
